//! Approximate set cover (§4.3.3) — bucketed parallel greedy in the style of
//! Julienne/MaNIS, with the graphFilter supplying mutation-free "deletion" of
//! covered elements.
//!
//! The instance is a bipartite graph (sets `0..num_sets`, elements above, as
//! produced by `sage_graph::gen::set_cover_instance`). Sets are bucketed by
//! `⌊log_{1+ε} (uncovered degree)⌋` in decreasing order; each round the top
//! bucket's sets race to claim their uncovered elements with random
//! priorities. A set that claims at least a `1/(1+ε)` fraction of its
//! current uncovered degree is added to the cover (so every chosen set is
//! within `(1+ε)` of the greedy choice, preserving the `O(log n)`
//! approximation); the rest release their claims and are re-bucketed at
//! their reduced degree.

use crate::bucket::{Buckets, Order, Packing, CLOSED};
use crate::filter::GraphFilter;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Result of the approximate set cover.
pub struct SetCoverResult {
    /// Chosen set ids (all `< num_sets`).
    pub sets: Vec<V>,
    /// Rounds of bucket processing.
    pub rounds: usize,
}

#[inline]
fn log_bucket(eps: f64, deg: u64) -> u64 {
    if deg == 0 {
        return 0;
    }
    ((deg as f64).ln() / (1.0 + eps).ln()).floor() as u64
}

/// Solve the instance; `num_sets` identifies the set-side vertices.
pub fn set_cover<G: Graph>(g: &G, num_sets: usize, eps: f64, seed: u64) -> SetCoverResult {
    let n = g.num_vertices();
    assert!(num_sets <= n);
    let covered: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    // claim[e]: priority-tagged winning set for element e in this round.
    let claims: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(u64::MAX)).collect();
    let mut filter = GraphFilter::new(g, false);
    // Only set-side vertices are bucketed.
    let mut buckets = Buckets::new(n, Order::Decreasing, Packing::SemiEager, |v| {
        if (v as usize) < num_sets && g.degree(v) > 0 {
            Some(log_bucket(eps, g.degree(v) as u64))
        } else {
            None
        }
    });
    let mut chosen = Vec::new();
    let mut rounds = 0usize;
    while let Some((bkt, sets)) = buckets.next_bucket() {
        rounds += 1;
        // Refresh degrees: pack away covered elements from these sets.
        let covered_ref = &covered;
        let packed = filter.edge_map_pack(&sets, |_, e, _| {
            !covered_ref[e as usize].load(Ordering::Relaxed)
        });
        // Sets whose bucket dropped get re-bucketed; the rest compete.
        // (Bucket each set once, then split with two parallel filters; sets
        // with nothing left to cover drop out.)
        let packed_ref: &[(V, u32)] = &packed;
        let bucketed: Vec<(V, u64, bool)> = par::par_map(packed.len(), |i| {
            let (s, deg) = packed_ref[i];
            (s, log_bucket(eps, deg as u64), deg > 0)
        });
        let competing: Vec<V> = par::filter_slice(&bucketed, |&(_, b, live)| live && b >= bkt)
            .into_iter()
            .map(|(s, _, _)| s)
            .collect();
        let mut rebucket: Vec<(V, u64)> =
            par::filter_slice(&bucketed, |&(_, b, live)| live && b < bkt)
                .into_iter()
                .map(|(s, b, _)| (s, b))
                .collect();
        // Claim phase: min (priority, set) wins each element.
        let comp: &[V] = &competing;
        let claims_ref = &claims;
        let filter_ref = &filter;
        let prio = |s: V| (par::hash64(seed ^ (rounds as u64) << 32 ^ s as u64) << 24) | s as u64;
        par::par_for(0, comp.len(), |i| {
            let s = comp[i];
            let p = prio(s);
            filter_ref.for_each_active(s, |e, _| {
                crate::algo::common::atomic_min(&claims_ref[e as usize], p);
            });
        });
        // Win count per set; winners keep, losers release.
        let win_counts: Vec<u64> = par::par_map(comp.len(), |i| {
            let s = comp[i];
            let p = prio(s);
            let mut wins = 0u64;
            filter_ref.for_each_active(s, |e, _| {
                if claims_ref[e as usize].load(Ordering::Relaxed) == p {
                    wins += 1;
                }
            });
            wins
        });
        for (i, &s) in competing.iter().enumerate() {
            let deg = filter.degree(s) as u64;
            let wins = win_counts[i];
            if wins as f64 >= deg as f64 / (1.0 + eps) {
                chosen.push(s);
                let p = prio(s);
                filter.for_each_active(s, |e, _| {
                    if claims[e as usize].load(Ordering::Relaxed) == p {
                        covered[e as usize].store(true, Ordering::Relaxed);
                    }
                });
                // Removal rides the same batch as the re-buckets below.
                rebucket.push((s, CLOSED));
            } else {
                // Re-bucket at the (possibly reduced) current bucket.
                rebucket.push((s, log_bucket(eps, deg)));
            }
        }
        // Reset the claims touched this round.
        par::par_for(0, comp.len(), |i| {
            filter_ref.for_each_active(comp[i], |e, _| {
                claims_ref[e as usize].store(u64::MAX, Ordering::Relaxed);
            });
        });
        buckets.update_batch_distinct(&rebucket);
    }
    SetCoverResult {
        sets: chosen,
        rounds,
    }
}

/// Verify that `sets` covers every coverable element (test helper).
pub fn check_cover<G: Graph>(g: &G, num_sets: usize, sets: &[V]) -> Result<(), String> {
    let n = g.num_vertices();
    let mut covered = vec![false; n];
    for &s in sets {
        if s as usize >= num_sets {
            return Err(format!("{s} is not a set vertex"));
        }
        g.for_each_edge(s, |e, _| covered[e as usize] = true);
    }
    for (e, &cov) in covered.iter().enumerate().skip(num_sets) {
        if g.degree(e as V) > 0 && !cov {
            return Err(format!("element {e} left uncovered"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::gen;

    #[test]
    fn covers_random_instance() {
        let g = gen::set_cover_instance(40, 400, 3, 1);
        let r = set_cover(&g, 40, 0.1, 7);
        check_cover(&g, 40, &r.sets).unwrap();
    }

    #[test]
    fn cover_size_close_to_greedy() {
        let g = gen::set_cover_instance(60, 600, 2, 3);
        let r = set_cover(&g, 60, 0.05, 9);
        check_cover(&g, 60, &r.sets).unwrap();
        let greedy = seq::greedy_set_cover(&g, 60);
        assert!(
            r.sets.len() <= 3 * greedy.len() + 2,
            "cover {} vs greedy {}",
            r.sets.len(),
            greedy.len()
        );
    }

    #[test]
    fn single_set_covers_everything() {
        // One set adjacent to all elements dominates.
        let mut edges: Vec<(V, V)> = (0..100u32).map(|e| (0, 5 + e)).collect();
        edges.push((1, 5)); // a redundant small set
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(105, edges),
            sage_graph::BuildOptions::default(),
        );
        let r = set_cover(&g, 5, 0.1, 2);
        check_cover(&g, 5, &r.sets).unwrap();
        assert!(r.sets.len() <= 2, "chose {:?}", r.sets);
        assert!(r.sets.contains(&0));
    }

    #[test]
    fn disjoint_sets_all_chosen() {
        // 10 disjoint sets of 5 elements each: all must be chosen.
        let mut edges = Vec::new();
        for s in 0..10u32 {
            for j in 0..5u32 {
                edges.push((s, 10 + s * 5 + j));
            }
        }
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(60, edges),
            sage_graph::BuildOptions::default(),
        );
        let r = set_cover(&g, 10, 0.1, 3);
        check_cover(&g, 10, &r.sets).unwrap();
        assert_eq!(r.sets.len(), 10);
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::set_cover_instance(30, 300, 3, 5);
        let before = Meter::global().snapshot();
        let _ = set_cover(&g, 30, 0.1, 4);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
