//! Shared atomic helpers for the algorithm implementations.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomically set `a = min(a, val)`; returns `true` if `val` was written.
#[inline]
pub fn atomic_min(a: &AtomicU64, val: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while val < cur {
        // ORDERING: AcqRel success / Acquire failure — callers treat a
        // winning write as a claim (e.g. "first improver emits the
        // vertex"), so the write is published with Release and losers are
        // ordered after winners with Acquire.
        match a.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomically set `a = max(a, val)`; returns `true` if `val` was written.
#[inline]
pub fn atomic_max(a: &AtomicU64, val: u64) -> bool {
    let mut cur = a.load(Ordering::Relaxed);
    while val > cur {
        // ORDERING: AcqRel success / Acquire failure — claim semantics as
        // in `atomic_min` above.
        match a.compare_exchange_weak(cur, val, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return true,
            Err(now) => cur = now,
        }
    }
    false
}

/// Atomic `f64 += delta` via bit-cast CAS (the fetch-add-double of §4.3.4).
#[inline]
pub fn atomic_add_f64(a: &AtomicU64, delta: f64) {
    let mut cur = a.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + delta;
        // ORDERING: AcqRel success / Acquire failure — accumulation needs
        // only per-variable CAS atomicity (rounds are join-separated);
        // AcqRel keeps racing contributions conservatively published.
        match a.compare_exchange_weak(cur, next.to_bits(), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// Allocate a vector of `n` atomics initialized to `init`.
pub fn atomic_vec(n: usize, init: u64) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(init)).collect()
}

/// Snapshot a `Vec<AtomicU64>` into plain values.
pub fn unwrap_atomic(v: Vec<AtomicU64>) -> Vec<u64> {
    v.into_iter().map(|a| a.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_semantics() {
        let a = AtomicU64::new(10);
        assert!(atomic_min(&a, 5));
        assert!(!atomic_min(&a, 7));
        assert_eq!(a.load(Ordering::Relaxed), 5);
        assert!(atomic_max(&a, 9));
        assert!(!atomic_max(&a, 2));
        assert_eq!(a.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn f64_add_accumulates() {
        let a = AtomicU64::new(0f64.to_bits());
        sage_parallel::par_for(0, 1000, |_| atomic_add_f64(&a, 0.5));
        let v = f64::from_bits(a.load(Ordering::Relaxed));
        assert!((v - 500.0).abs() < 1e-9);
    }
}
