//! Integral-weight SSSP — weighted BFS (§4.3.1), after Julienne \[36\].
//!
//! Vertices are bucketed by tentative distance; the minimum bucket is settled
//! each round (weights are ≥ 1, so extraction order is final, as in Dial's
//! algorithm) and its out-edges are relaxed with `edgeMapChunked`. The
//! bucketing structure is the semi-eager variant of Appendix B, which needs
//! only `O(n)` words.

use crate::algo::common::{atomic_min, atomic_vec, unwrap_atomic};
use crate::bucket::{Buckets, Order, Packing};
use crate::edge_map::{edge_map, EdgeMapFn, EdgeMapOpts};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

struct RelaxFn<'a> {
    dist: &'a [AtomicU64],
}

impl EdgeMapFn for RelaxFn<'_> {
    fn update(&self, s: V, d: V, w: u32) -> bool {
        let nd = self.dist[s as usize].load(Ordering::Relaxed) + w as u64;
        if nd < self.dist[d as usize].load(Ordering::Relaxed) {
            self.dist[d as usize].store(nd, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, s: V, d: V, w: u32) -> bool {
        let nd = self.dist[s as usize].load(Ordering::Relaxed) + w as u64;
        atomic_min(&self.dist[d as usize], nd)
    }

    fn cond(&self, _d: V) -> bool {
        true
    }
}

/// Shortest-path distances from `src` over positive integral weights
/// (`u64::MAX` = unreachable). Panics on unweighted graphs.
pub fn wbfs<G: Graph>(g: &G, src: V) -> Vec<u64> {
    assert!(g.is_weighted(), "wBFS requires an integral-weight graph");
    let n = g.num_vertices();
    let dist = atomic_vec(n, u64::MAX);
    dist[src as usize].store(0, Ordering::Relaxed);
    let mut buckets = Buckets::new(n, Order::Increasing, Packing::SemiEager, |v| {
        if v == src {
            Some(0)
        } else {
            None
        }
    });
    while let Some((_d, ids)) = buckets.next_bucket() {
        // Settled: weights >= 1 guarantee no later improvement.
        let mut frontier = VertexSubset::from_sparse(n, ids);
        let relax = RelaxFn { dist: &dist };
        let mut moved = edge_map(g, &mut frontier, &relax, EdgeMapOpts::default());
        // Re-bucket improved vertices at their new tentative distance. The
        // sort+dedup collapses the frontier's duplicate emissions to one move
        // per vertex, qualifying the batch for the distinct fast path.
        let mut ids: Vec<V> = moved.as_sparse().to_vec();
        par::par_sort(&mut ids);
        ids.dedup();
        let ids_ref: &[V] = &ids;
        let updates: Vec<(V, u64)> = par::par_map(ids.len(), |i| {
            let v = ids_ref[i];
            (v, dist[v as usize].load(Ordering::Relaxed))
        });
        buckets.update_batch_distinct(&updates);
    }
    unwrap_atomic(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{build_csr, gen, BuildOptions, CompressedCsr};

    fn weighted_rmat(scale: u32, seed: u64) -> sage_graph::Csr {
        let list =
            gen::rmat_edges(scale, 8, gen::RmatParams::default(), seed).with_random_weights(seed);
        build_csr(list, BuildOptions::default())
    }

    #[test]
    fn matches_dijkstra_on_rmat() {
        let g = weighted_rmat(9, 1);
        assert_eq!(wbfs(&g, 0), seq::dijkstra(&g, 0));
    }

    #[test]
    fn matches_dijkstra_multiple_sources() {
        let g = weighted_rmat(8, 5);
        for src in [0, 7, 100] {
            assert_eq!(wbfs(&g, src), seq::dijkstra(&g, src), "source {src}");
        }
    }

    #[test]
    fn works_on_compressed_weighted() {
        let g = weighted_rmat(8, 9);
        let c = CompressedCsr::from_csr(&g, 64);
        assert_eq!(wbfs(&c, 3), seq::dijkstra(&g, 3));
    }

    #[test]
    fn unreachable_stay_max() {
        let mut edges = vec![(0u32, 1u32)];
        edges.push((2, 3));
        let list = sage_graph::EdgeList {
            n: 4,
            edges,
            weights: Some(vec![2, 3]),
        };
        let g = build_csr(list, BuildOptions::default());
        let d = wbfs(&g, 0);
        assert_eq!(d, vec![0, 2, u64::MAX, u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "requires an integral-weight")]
    fn rejects_unweighted() {
        let g = gen::path(4);
        let _ = wbfs(&g, 0);
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = weighted_rmat(8, 2);
        let before = Meter::global().snapshot();
        let _ = wbfs(&g, 0);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
