//! Maximal independent set (§4.3.3) — rootset-based parallel greedy
//! (Blelloch–Fineman–Shun \[17\]).
//!
//! Vertices carry random priorities; each round every undecided vertex with
//! no smaller-priority undecided neighbor joins the MIS and knocks its
//! neighbors out. `O(m)` expected work and `O(log² n)` depth whp; state is
//! one word per vertex.

use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU8, Ordering};

const UNDECIDED: u8 = 0;
const IN: u8 = 1;
const OUT: u8 = 2;

#[inline]
fn priority(seed: u64, v: V) -> (u64, V) {
    (par::hash64(seed ^ v as u64), v)
}

/// Compute a maximal independent set; returns a membership vector.
pub fn mis<G: Graph>(g: &G, seed: u64) -> Vec<bool> {
    let n = g.num_vertices();
    let status: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(UNDECIDED)).collect();
    let mut undecided: Vec<V> = (0..n as V).collect();
    while !undecided.is_empty() {
        // Rootset: undecided vertices that are local priority minima.
        let und: &[V] = &undecided;
        let status_ref = &status;
        let roots: Vec<V> = par::pack_index(und.len(), |i| {
            let v = und[i];
            let pv = priority(seed, v);
            let mut is_root = true;
            g.for_each_edge_while(v, |u, _| {
                if status_ref[u as usize].load(Ordering::Relaxed) == UNDECIDED
                    && priority(seed, u) < pv
                {
                    is_root = false;
                    return false;
                }
                true
            });
            is_root
        })
        .into_iter()
        .map(|i| und[i as usize])
        .collect();
        debug_assert!(
            !roots.is_empty(),
            "rootset cannot be empty while vertices remain"
        );
        // Roots join the MIS; their neighbors are knocked out.
        let roots_ref: &[V] = &roots;
        par::par_for(0, roots.len(), |i| {
            status_ref[roots_ref[i] as usize].store(IN, Ordering::Relaxed);
        });
        par::par_for(0, roots.len(), |i| {
            let v = roots_ref[i];
            g.for_each_edge(v, |u, _| {
                // A neighbor of an IN vertex can never be IN: two adjacent
                // roots are impossible (one has the smaller priority).
                status_ref[u as usize].store(OUT, Ordering::Relaxed);
            });
        });
        undecided = par::pack_index(und.len(), |i| {
            status_ref[und[i] as usize].load(Ordering::Relaxed) == UNDECIDED
        })
        .into_iter()
        .map(|i| und[i as usize])
        .collect();
    }
    status.into_iter().map(|s| s.into_inner() == IN).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn mis_on_rmat_is_maximal_independent() {
        let g = gen::rmat(10, 8, gen::RmatParams::default(), 81);
        let set = mis(&g, 1);
        seq::check_maximal_independent_set(&g, &set).unwrap();
    }

    #[test]
    fn mis_on_complete_graph_is_single_vertex() {
        let g = gen::complete(50);
        let set = mis(&g, 2);
        assert_eq!(set.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn mis_on_star_contains_leaves_or_center() {
        let g = gen::star(100);
        let set = mis(&g, 3);
        seq::check_maximal_independent_set(&g, &set).unwrap();
        if set[0] {
            assert_eq!(set.iter().filter(|&&b| b).count(), 1);
        } else {
            assert_eq!(set.iter().filter(|&&b| b).count(), 99);
        }
    }

    #[test]
    fn mis_on_edgeless_graph_is_everything() {
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(7, vec![]),
            sage_graph::BuildOptions::default(),
        );
        assert!(mis(&g, 4).iter().all(|&b| b));
    }

    #[test]
    fn mis_on_compressed() {
        let csr = gen::rmat(9, 6, gen::RmatParams::default(), 83);
        let g = CompressedCsr::from_csr(&csr, 64);
        let set = mis(&g, 5);
        seq::check_maximal_independent_set(&csr, &set).unwrap();
    }

    #[test]
    fn different_seeds_both_valid() {
        let g = gen::grid(20, 20);
        for seed in [6, 7] {
            seq::check_maximal_independent_set(&g, &mis(&g, seed)).unwrap();
        }
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 85);
        let before = Meter::global().snapshot();
        let _ = mis(&g, 8);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
