//! Single-source widest path (max-bottleneck), §4.3.1.
//!
//! The paper provides two implementations; both are reproduced:
//! * [`widest_path_bf`] — Bellman-Ford-style iterative max-min relaxation;
//! * [`widest_path_bucketed`] — the Julienne-based variant: widths are
//!   bucketed in decreasing order and settled bucket-by-bucket (the max-min
//!   analogue of Dial's algorithm, valid because path widths only shrink).

use crate::algo::common::{atomic_max, atomic_vec, unwrap_atomic};
use crate::bucket::{Buckets, Order, Packing};
use crate::edge_map::{edge_map, EdgeMapFn, EdgeMapOpts};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct WidestFn<'a> {
    width: &'a [AtomicU64],
    claimed: Option<&'a [AtomicBool]>,
}

impl WidestFn<'_> {
    #[inline]
    fn candidate(&self, s: V, w: u32) -> u64 {
        self.width[s as usize].load(Ordering::Relaxed).min(w as u64)
    }
}

impl EdgeMapFn for WidestFn<'_> {
    fn update(&self, s: V, d: V, w: u32) -> bool {
        let nw = self.candidate(s, w);
        if nw > self.width[d as usize].load(Ordering::Relaxed) {
            self.width[d as usize].store(nw, Ordering::Relaxed);
            match self.claimed {
                Some(c) => !c[d as usize].swap(true, Ordering::Relaxed),
                None => true,
            }
        } else {
            false
        }
    }

    fn update_atomic(&self, s: V, d: V, w: u32) -> bool {
        let nw = self.candidate(s, w);
        if atomic_max(&self.width[d as usize], nw) {
            match self.claimed {
                // ORDERING: AcqRel — emission token, as in Bellman-Ford.
                Some(c) => !c[d as usize].swap(true, Ordering::AcqRel),
                None => true,
            }
        } else {
            false
        }
    }

    fn cond(&self, _d: V) -> bool {
        true
    }
}

/// Bellman-Ford-style widest path: `width[v]` is the maximum over paths of
/// the minimum edge weight (`0` = unreachable; source = `u64::MAX`).
pub fn widest_path_bf<G: Graph>(g: &G, src: V) -> Vec<u64> {
    assert!(g.is_weighted(), "widest path requires a weighted graph");
    let n = g.num_vertices();
    let width = atomic_vec(n, 0);
    width[src as usize].store(u64::MAX, Ordering::Relaxed);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut frontier = VertexSubset::single(n, src);
    while !frontier.is_empty() {
        let f = WidestFn {
            width: &width,
            claimed: Some(&claimed),
        };
        let next = edge_map(g, &mut frontier, &f, EdgeMapOpts::default());
        next.for_each(|v| claimed[v as usize].store(false, Ordering::Relaxed));
        frontier = next;
    }
    unwrap_atomic(width)
}

/// Bucketed widest path (the wBFS-based implementation of §4.3.1).
pub fn widest_path_bucketed<G: Graph>(g: &G, src: V) -> Vec<u64> {
    assert!(g.is_weighted(), "widest path requires a weighted graph");
    let n = g.num_vertices();
    // Upper bound on edge weights, for the decreasing bucket key space.
    let wmax = par::reduce_map(
        0,
        n,
        0,
        0u64,
        |vi| {
            let mut mx = 0u64;
            g.for_each_edge(vi as V, |_, w| mx = mx.max(w as u64));
            mx
        },
        |a, b| a.max(b),
    );
    let width = atomic_vec(n, 0);
    width[src as usize].store(u64::MAX, Ordering::Relaxed);
    let key_of = move |w: u64| w.min(wmax + 1); // source clamps to wmax+1
    let mut buckets = Buckets::new(n, Order::Decreasing, Packing::SemiEager, |v| {
        if v == src {
            Some(key_of(u64::MAX))
        } else {
            None
        }
    });
    while let Some((_k, ids)) = buckets.next_bucket() {
        // Extracting the widest bucket settles its vertices: any path through
        // narrower vertices can only be narrower.
        let mut frontier = VertexSubset::from_sparse(n, ids);
        let relax = WidestFn {
            width: &width,
            claimed: None,
        };
        let mut moved = edge_map(g, &mut frontier, &relax, EdgeMapOpts::default());
        let mut ids: Vec<V> = moved.as_sparse().to_vec();
        par::par_sort(&mut ids);
        ids.dedup();
        let ids_ref: &[V] = &ids;
        let updates: Vec<(V, u64)> = par::par_map(ids.len(), |i| {
            let v = ids_ref[i];
            (v, key_of(width[v as usize].load(Ordering::Relaxed)))
        });
        buckets.update_batch_distinct(&updates);
    }
    unwrap_atomic(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{build_csr, gen, BuildOptions};

    fn weighted(scale: u32, seed: u64) -> sage_graph::Csr {
        let list =
            gen::rmat_edges(scale, 8, gen::RmatParams::default(), seed).with_random_weights(seed);
        build_csr(list, BuildOptions::default())
    }

    #[test]
    fn bf_matches_reference() {
        let g = weighted(9, 11);
        assert_eq!(widest_path_bf(&g, 0), seq::widest_path(&g, 0));
    }

    #[test]
    fn bucketed_matches_reference() {
        let g = weighted(9, 12);
        assert_eq!(widest_path_bucketed(&g, 0), seq::widest_path(&g, 0));
    }

    #[test]
    fn both_impls_agree_from_many_sources() {
        let g = weighted(8, 13);
        for src in [1, 33, 200] {
            assert_eq!(
                widest_path_bf(&g, src),
                widest_path_bucketed(&g, src),
                "source {src}"
            );
        }
    }

    #[test]
    fn unreachable_have_zero_width() {
        let list = sage_graph::EdgeList {
            n: 4,
            edges: vec![(0, 1), (2, 3)],
            weights: Some(vec![7, 9]),
        };
        let g = build_csr(list, BuildOptions::default());
        let w = widest_path_bf(&g, 0);
        assert_eq!(w[0], u64::MAX);
        assert_eq!(w[1], 7);
        assert_eq!(w[2], 0);
        assert_eq!(w[3], 0);
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = weighted(8, 14);
        let before = Meter::global().snapshot();
        let _ = widest_path_bucketed(&g, 0);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
