//! Spanning forest via LDD + contraction (§4.3.2).
//!
//! Identical recursion to [`crate::algo::connectivity`], additionally keeping
//! (i) the LDD BFS tree edges of each level and (ii) one witness original
//! edge per contracted inter-cluster edge, which maps the recursive forest
//! back to edges of the input graph.

use crate::algo::connectivity::pair_key;
use crate::algo::ldd::ldd;
use sage_graph::{build_csr, BuildOptions, EdgeList, Graph, NONE_V, V};
use sage_parallel as par;
use sage_parallel::ConcurrentMap;

/// Edges of a spanning forest of `g`.
pub fn spanning_forest<G: Graph>(g: &G, beta: f64, seed: u64) -> Vec<(V, V)> {
    spanning_forest_rec(g, beta, seed, 0, &|a, b| (a, b))
}

fn spanning_forest_rec<G: Graph>(
    g: &G,
    beta: f64,
    seed: u64,
    depth: usize,
    to_original: &dyn Fn(V, V) -> (V, V),
) -> Vec<(V, V)> {
    assert!(depth < 64, "contraction failed to converge");
    let n = g.num_vertices();
    if n == 0 || g.num_edges() == 0 {
        return Vec::new();
    }
    let d = ldd(g, beta, seed);
    // LDD BFS tree edges (in this level's vertex space -> map to original).
    let mut forest: Vec<(V, V)> = (0..n)
        .filter(|&v| d.parent[v] != NONE_V && d.parent[v] as usize != v)
        .map(|v| to_original(d.parent[v], v as V))
        .collect();

    let inter = crate::algo::ldd::count_inter_cluster_edges(g, &d.cluster);
    if inter == 0 {
        return forest;
    }
    // Witness map: contracted pair -> one original edge (encoded endpoint
    // pair of *this* level, mapped through to_original at extraction).
    let map = ConcurrentMap::with_capacity((inter as usize).max(16));
    let cluster = &d.cluster;
    par::par_for(0, n, |vi| {
        let v = vi as V;
        let cv = cluster[vi];
        g.for_each_edge(v, |u, _| {
            let cu = cluster[u as usize];
            if cv != cu {
                map.insert_if_absent(pair_key(cv, cu), ((v as u64) << 32) | u as u64);
            }
        });
    });
    let entries = map.entries();
    let contracted: Vec<(V, V)> = entries
        .iter()
        .map(|&(k, _)| ((k >> 32) as V, (k & 0xFFFF_FFFF) as V))
        .collect();

    let centers: Vec<V> = par::pack_index(n, |v| cluster[v] as usize == v);
    let mut dense_of = vec![0u32; n];
    for (i, &c) in centers.iter().enumerate() {
        dense_of[c as usize] = i as u32;
    }
    let edges: Vec<(V, V)> = contracted
        .iter()
        .map(|&(a, b)| (dense_of[a as usize], dense_of[b as usize]))
        .collect();
    let mut cg = build_csr(
        EdgeList::new(centers.len(), edges),
        BuildOptions {
            symmetrize: true,
            block_size: 64,
        },
    );
    // Contracted graphs are small-memory state (Theorem C.2).
    cg.mark_dram_resident();
    // Witness lookup for a contracted (dense) edge, composed with the current
    // level's original mapping.
    let witness = |a: V, b: V| -> (V, V) {
        let key = pair_key(centers[a as usize], centers[b as usize]);
        let enc = map
            .get_encoded(key)
            .expect("forest edge must exist in witness map");
        to_original((enc >> 32) as V, (enc & 0xFFFF_FFFF) as V)
    };
    let sub = spanning_forest_rec(
        &cg,
        beta,
        par::hash64(seed.wrapping_add(depth as u64 + 1)),
        depth + 1,
        &witness,
    );
    forest.extend(sub);
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{self, UnionFind};
    use sage_graph::gen;

    fn check_forest(g: &sage_graph::Csr, forest: &[(V, V)]) {
        let n = g.num_vertices();
        // Every forest edge is a real edge.
        for &(u, v) in forest {
            assert!(g.neighbors(u).contains(&v), "({u},{v}) not in graph");
        }
        // Acyclic and spanning: n - #components edges, all unions succeed.
        let mut uf = UnionFind::new(n);
        for &(u, v) in forest {
            assert!(uf.union(u, v), "cycle through ({u},{v})");
        }
        let want_components = crate::algo::connectivity::num_components(&seq::components(g));
        assert_eq!(forest.len(), n - want_components, "forest size");
        // Spanning: same component structure as the graph.
        let mut uf2 = UnionFind::new(n);
        for &(u, v) in forest {
            uf2.union(u, v);
        }
        let labels = seq::components(g);
        for v in 0..n as u32 {
            let in_graph_same = labels[v as usize];
            assert_eq!(
                uf2.find(v),
                uf2.find(in_graph_same),
                "vertex {v} disconnected from its component root in the forest"
            );
        }
    }

    #[test]
    fn forest_of_rmat() {
        let g = gen::rmat(9, 6, gen::RmatParams::default(), 51);
        let f = spanning_forest(&g, 0.2, 1);
        check_forest(&g, &f);
    }

    #[test]
    fn forest_of_disconnected_graph() {
        let g = gen::erdos_renyi(2000, 900, 6);
        let f = spanning_forest(&g, 0.2, 2);
        check_forest(&g, &f);
    }

    #[test]
    fn forest_of_two_cliques() {
        let g = gen::two_cliques(15);
        let f = spanning_forest(&g, 0.2, 3);
        check_forest(&g, &f);
        assert_eq!(f.len(), 28); // (15-1) * 2
    }

    #[test]
    fn forest_of_tree_is_the_tree() {
        let g = gen::path(300);
        let f = spanning_forest(&g, 0.2, 4);
        check_forest(&g, &f);
        assert_eq!(f.len(), 299);
    }
}
