//! Bit-parallel multi-source BFS (the batched-traversal primitive behind
//! `sage-serve`'s query batching).
//!
//! A service answering many BFS-shaped point queries over one snapshot pays
//! one full traversal *per query* if it runs them independently. This module
//! amortizes that cost: up to [`MAX_SOURCES`] sources run as **one**
//! frontier-parallel traversal in which every per-vertex word is a `u64`
//! *source mask* — bit `i` of `seen[v]` means "source `i` has reached `v`".
//! Each round ORs the frontier masks across edges, so k searches advance in
//! lock-step for the cost of one edge sweep over the union frontier (the
//! Graphyti/MS-BFS idea, applied to the PSAM: the graph stays read-only in
//! NVRAM and the mutable mask state is three `O(n)`-word DRAM arrays — not
//! `k` independent parent arrays and frontiers).
//!
//! The traversal is threaded through the ordinary [`edge_map`] machinery
//! (direction optimization included) by an [`EdgeMapFn`] over atomic mask
//! arrays, and results are delivered through a **generic per-vertex
//! payload**: an [`MsBfsVisit`] sink observes `(vertex, newly arrived source
//! bits, round)` exactly once per (source, vertex) pair, so callers can
//! materialize distances, membership bits, or counters without the core
//! paying for state it does not need. [`msbfs_levels`] is the ready-made
//! distance payload used by the serving layer; its output is bit-for-bit
//! identical to running [`bfs_levels`](crate::algo::bfs::bfs_levels) once
//! per source (BFS distances are deterministic even though parent choices
//! are not).

use crate::edge_map::{edge_map, EdgeMapFn, EdgeMapOpts};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use sage_nvram::meter;
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum number of sources per batched traversal: one bit of a `u64` mask
/// per source.
pub const MAX_SOURCES: usize = 64;

/// Per-vertex payload sink for a multi-source traversal.
///
/// [`visit`](MsBfsVisit::visit) is called once per vertex per round in which
/// that vertex receives previously unseen source bits — i.e. exactly once per
/// `(source, vertex)` reachable pair over the whole run, from parallel
/// contexts (distinct vertices concurrently, never the same vertex twice in
/// one round).
pub trait MsBfsVisit: Sync {
    /// `new_bits` are the sources whose BFS first reaches `v` at `round`
    /// (round 0 = the seed itself).
    fn visit(&self, v: V, new_bits: u64, round: u32);
}

/// A visitor that discards the payload (membership comes from
/// [`MsBfsOutcome::seen`] alone).
pub struct NoPayload;

impl MsBfsVisit for NoPayload {
    fn visit(&self, _v: V, _new_bits: u64, _round: u32) {}
}

/// Result of a mask-level multi-source traversal.
pub struct MsBfsOutcome {
    /// `seen[v]` bit `i` set ⇔ source `i` reaches vertex `v`.
    pub seen: Vec<u64>,
    /// Traversal rounds executed (the largest finite BFS distance).
    pub rounds: usize,
}

/// The [`EdgeMapFn`] of the bit-parallel traversal: propagate the source
/// masks of the current frontier (`cur`) into `next`, masking off bits the
/// destination has already seen. The first edge call that deposits bits into
/// an empty `next[d]` claims `d` for the output frontier, so the frontier
/// stays duplicate-free without a separate parent CAS.
pub(crate) struct MsBfsFn<'a> {
    pub(crate) cur: &'a [AtomicU64],
    pub(crate) next: &'a [AtomicU64],
    pub(crate) seen: &'a [AtomicU64],
    /// Mask of all participating sources; vertices that have seen every
    /// source are skipped via `cond`.
    pub(crate) full: u64,
}

impl EdgeMapFn for MsBfsFn<'_> {
    fn update(&self, s: V, d: V, _w: u32) -> bool {
        // Dense (pull) direction: exactly one thread owns `d`, so plain
        // read-modify-write on `next[d]` is race-free.
        let new = self.cur[s as usize].load(Ordering::Relaxed)
            & !self.seen[d as usize].load(Ordering::Relaxed);
        if new == 0 {
            return false;
        }
        let old = self.next[d as usize].load(Ordering::Relaxed);
        self.next[d as usize].store(old | new, Ordering::Relaxed);
        old == 0
    }

    fn update_atomic(&self, s: V, d: V, _w: u32) -> bool {
        let new = self.cur[s as usize].load(Ordering::Relaxed)
            & !self.seen[d as usize].load(Ordering::Relaxed);
        if new == 0 {
            return false;
        }
        // fetch_or is idempotent per bit; only the transition 0 → nonzero
        // admits `d` to the next frontier (exactly once per round).
        self.next[d as usize].fetch_or(new, Ordering::Relaxed) == 0
    }

    fn cond(&self, d: V) -> bool {
        self.seen[d as usize].load(Ordering::Relaxed) != self.full
    }
}

/// Run up to [`MAX_SOURCES`] BFS traversals as one bit-parallel sweep,
/// delivering per-vertex arrivals to `visitor`.
///
/// Duplicate source vertices are allowed (each still owns its own mask bit).
/// DRAM footprint of the traversal state is three `n`-word mask arrays plus
/// the frontier — independent of the number of sources.
///
/// # Panics
/// Panics if `sources` is empty, longer than [`MAX_SOURCES`], or references
/// a vertex outside the graph.
pub fn msbfs_visit<G: Graph, P: MsBfsVisit>(
    g: &G,
    sources: &[V],
    visitor: &P,
    opts: EdgeMapOpts,
) -> MsBfsOutcome {
    let n = g.num_vertices();
    let k = sources.len();
    assert!(
        (1..=MAX_SOURCES).contains(&k),
        "msbfs needs 1..={MAX_SOURCES} sources, got {k}"
    );
    for &s in sources {
        assert!((s as usize) < n, "msbfs source {s} out of range (n = {n})");
    }
    let seen = crate::algo::common::atomic_vec(n, 0u64);
    let cur = crate::algo::common::atomic_vec(n, 0u64);
    let next = crate::algo::common::atomic_vec(n, 0u64);

    // Seed round 0: one bit per source; duplicate source vertices simply
    // accumulate several bits on the same word.
    let mut roots: Vec<V> = Vec::with_capacity(k);
    for (i, &s) in sources.iter().enumerate() {
        let bit = 1u64 << i;
        let before = seen[s as usize].fetch_or(bit, Ordering::Relaxed);
        cur[s as usize].fetch_or(bit, Ordering::Relaxed);
        if before == 0 {
            roots.push(s);
        }
    }
    for &s in &roots {
        visitor.visit(s, seen[s as usize].load(Ordering::Relaxed), 0);
    }
    meter::aux_write(2 * k as u64);

    let full = if k == MAX_SOURCES {
        u64::MAX
    } else {
        (1u64 << k) - 1
    };
    let f = MsBfsFn {
        cur: &cur,
        next: &next,
        seen: &seen,
        full,
    };
    let mut frontier = VertexSubset::from_sparse(n, roots);
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        let out = edge_map(g, &mut frontier, &f, opts);
        // Retire the old frontier's masks *before* installing the new ones:
        // a vertex may sit in consecutive frontiers (new bits each round).
        frontier.for_each(|v| cur[v as usize].store(0, Ordering::Relaxed));
        meter::aux_write(frontier.len() as u64);
        let r = rounds as u32;
        out.for_each(|v| {
            let bits = next[v as usize].swap(0, Ordering::Relaxed);
            seen[v as usize].fetch_or(bits, Ordering::Relaxed);
            cur[v as usize].store(bits, Ordering::Relaxed);
            visitor.visit(v, bits, r);
        });
        meter::aux_write(3 * out.len() as u64);
        frontier = out;
    }
    MsBfsOutcome {
        seen: crate::algo::common::unwrap_atomic(seen),
        rounds,
    }
}

/// Distances (and reach counts) of a batched multi-source BFS.
pub struct MsLevels {
    /// `levels[i][v]` is the BFS distance from `sources[i]` to `v`
    /// (`u64::MAX` = unreachable) — identical to
    /// [`bfs_levels`](crate::algo::bfs::bfs_levels) run per source.
    pub levels: Vec<Vec<u64>>,
    /// Vertices reached per source (including the source itself) — the
    /// touched-word share a serving batch splits its metered cost by.
    pub reached: Vec<usize>,
    /// Final per-vertex source masks.
    pub seen: Vec<u64>,
    /// Traversal rounds executed.
    pub rounds: usize,
}

/// Distance payload: scatters each arrival round into per-source level
/// arrays through raw pointers (sound because a `(source, vertex)` pair is
/// visited exactly once).
pub(crate) struct LevelsSink {
    pub(crate) ptrs: Vec<par::SendPtr<u64>>,
}

impl MsBfsVisit for LevelsSink {
    fn visit(&self, v: V, new_bits: u64, round: u32) {
        let mut m = new_bits;
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            // SAFETY: bit `b` arrives at vertex `v` exactly once over the
            // run, and distinct vertices are visited from distinct tasks, so
            // every write targets a unique slot.
            unsafe { *self.ptrs[b].add(v as usize) = round as u64 };
            m &= m - 1;
        }
        meter::aux_write(new_bits.count_ones() as u64);
    }
}

/// Multi-source BFS distances: one traversal, up to [`MAX_SOURCES`] sources.
pub fn msbfs_levels<G: Graph>(g: &G, sources: &[V]) -> MsLevels {
    msbfs_levels_with_opts(g, sources, EdgeMapOpts::default())
}

/// [`msbfs_levels`] with explicit traversal options.
pub fn msbfs_levels_with_opts<G: Graph>(g: &G, sources: &[V], opts: EdgeMapOpts) -> MsLevels {
    let n = g.num_vertices();
    let mut levels: Vec<Vec<u64>> = sources.iter().map(|_| vec![u64::MAX; n]).collect();
    let sink = LevelsSink {
        ptrs: levels
            .iter_mut()
            .map(|l| par::SendPtr(l.as_mut_ptr()))
            .collect(),
    };
    let out = msbfs_visit(g, sources, &sink, opts);
    let per_bit = par::count_ones_per_bit(&out.seen);
    meter::aux_read(out.seen.len() as u64);
    MsLevels {
        levels,
        reached: per_bit[..sources.len()]
            .iter()
            .map(|&c| c as usize)
            .collect(),
        seen: out.seen,
        rounds: out.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::bfs::bfs_levels;
    use crate::edge_map::{SparseImpl, Strategy};
    use sage_graph::gen;

    fn check_against_single_source<G: Graph>(g: &G, sources: &[V]) {
        let ms = msbfs_levels(g, sources);
        assert_eq!(ms.levels.len(), sources.len());
        for (i, &s) in sources.iter().enumerate() {
            let (want, _) = bfs_levels(g, s);
            assert_eq!(ms.levels[i], want, "source {s} (slot {i}) diverged");
            let reached = want.iter().filter(|&&l| l != u64::MAX).count();
            assert_eq!(ms.reached[i], reached, "reach count for source {s}");
        }
        // The seen masks agree with the levels.
        for v in 0..g.num_vertices() {
            for (i, lv) in ms.levels.iter().enumerate() {
                let bit = ms.seen[v] & (1 << i) != 0;
                assert_eq!(bit, lv[v] != u64::MAX, "seen/levels disagree at {v}");
            }
        }
    }

    #[test]
    fn matches_single_source_bfs_on_rmat() {
        let g = gen::rmat(10, 8, gen::RmatParams::default(), 21);
        let sources: Vec<V> = (0..32).map(|i| (i * 17) % 1024).collect();
        check_against_single_source(&g, &sources);
    }

    #[test]
    fn full_64_source_batch_on_grid() {
        let g = gen::grid(20, 30);
        let sources: Vec<V> = (0..64).map(|i| (i * 9) % 600).collect();
        check_against_single_source(&g, &sources);
    }

    #[test]
    fn duplicate_sources_get_independent_bits() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 3);
        let sources: Vec<V> = vec![5, 5, 9, 5];
        check_against_single_source(&g, &sources);
    }

    #[test]
    fn disconnected_components_stay_separate() {
        let g = gen::two_cliques(6); // vertices 0..6 and 6..12
        let ms = msbfs_levels(&g, &[0, 7]);
        for v in 0..6 {
            assert_ne!(ms.levels[0][v], u64::MAX);
            assert_eq!(ms.levels[1][v], u64::MAX);
        }
        for v in 6..12 {
            assert_eq!(ms.levels[0][v], u64::MAX);
            assert_ne!(ms.levels[1][v], u64::MAX);
        }
        assert_eq!(ms.reached, vec![6, 6]);
    }

    #[test]
    fn sparse_impls_and_dense_agree() {
        let g = gen::rmat(9, 10, gen::RmatParams::default(), 8);
        let sources: Vec<V> = (0..16).map(|i| i * 3).collect();
        let base = msbfs_levels(&g, &sources);
        for (name, opts) in [
            (
                "sparse",
                EdgeMapOpts {
                    strategy: Strategy::ForceSparse,
                    sparse_impl: SparseImpl::Sparse,
                    ..Default::default()
                },
            ),
            (
                "blocked",
                EdgeMapOpts {
                    strategy: Strategy::ForceSparse,
                    sparse_impl: SparseImpl::Blocked,
                    ..Default::default()
                },
            ),
            (
                "dense",
                EdgeMapOpts {
                    strategy: Strategy::ForceDense,
                    ..Default::default()
                },
            ),
        ] {
            let got = msbfs_levels_with_opts(&g, &sources, opts);
            assert_eq!(got.levels, base.levels, "{name} diverged");
        }
    }

    #[test]
    fn visitor_sees_each_pair_exactly_once() {
        use std::sync::atomic::AtomicU64;
        struct CountSink {
            hits: Vec<AtomicU64>,
        }
        impl MsBfsVisit for CountSink {
            fn visit(&self, v: V, new_bits: u64, _round: u32) {
                self.hits[v as usize].fetch_add(new_bits.count_ones() as u64, Ordering::Relaxed);
            }
        }
        let g = gen::complete(40);
        let sources: Vec<V> = (0..8).collect();
        let sink = CountSink {
            hits: (0..40).map(|_| AtomicU64::new(0)).collect(),
        };
        let out = msbfs_visit(&g, &sources, &sink, EdgeMapOpts::default());
        // Complete graph: every source reaches every vertex → 8 bits each.
        for v in 0..40 {
            assert_eq!(sink.hits[v].load(Ordering::Relaxed), 8, "vertex {v}");
            assert_eq!(out.seen[v], 0xFF);
        }
        assert_eq!(out.rounds, 2, "diameter 1 plus the empty closing round");
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 2);
        let before = Meter::global().snapshot();
        let _ = msbfs_levels(&g, &[0, 1, 2, 3]);
        let d = Meter::global().snapshot().since(&before);
        assert_eq!(d.graph_write, 0, "MS-BFS must never write the graph");
        assert!(d.graph_read > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_source() {
        let g = gen::path(4);
        let _ = msbfs_levels(&g, &[9]);
    }

    #[test]
    #[should_panic(expected = "sources")]
    fn rejects_too_many_sources() {
        let g = gen::path(100);
        let sources: Vec<V> = (0..65).collect();
        let _ = msbfs_levels(&g, &sources);
    }
}
