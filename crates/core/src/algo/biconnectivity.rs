//! Biconnectivity (§4.3.2): Tarjan-Vishkin over a BFS forest, with the
//! component step run on a graphFilter.
//!
//! Pipeline:
//! 1. connectivity → one root per component; multi-source BFS forest;
//! 2. preorder numbers and subtree sizes by level-synchronous tree passes
//!    (`O(dG)` rounds, matching the `O(dG log n + log³ n)` depth of Table 1);
//! 3. `low`/`high` values per vertex;
//! 4. build a **graphFilter** keeping (a) all non-tree edges and (b) tree
//!    edges `(v,w)` (w a child, v not a root) whose subtree escapes
//!    `subtree(v)` — exactly the paper's "call to connectivity that runs on
//!    the input graph, with a large subset of the edges removed";
//! 5. connectivity on the filter labels each non-root vertex `w` with the
//!    biconnected component of its tree edge `(parent(w), w)`.
//!
//! BFS forests admit this simplification because every non-tree edge joins
//! unrelated vertices (level difference ≤ 1) and all root-incident edges are
//! tree edges.

use crate::algo::common::atomic_vec;
use crate::algo::connectivity::connectivity;
use crate::edge_map::{edge_map, ClaimFn, EdgeMapOpts, UNVISITED};
use crate::filter::GraphFilter;
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::Ordering;

/// Output of [`biconnectivity`]: a per-edge labeling expressed through the
/// BFS forest (Table 1's "mapping from each edge to the label of its
/// biconnected component").
pub struct Biconnectivity {
    /// BFS forest parents (`parent[root] == root`).
    pub parent: Vec<V>,
    /// Component label (in the filtered graph) of each vertex; the label of
    /// tree edge `(parent[v], v)` is `labels[v]`.
    pub labels: Vec<V>,
}

impl Biconnectivity {
    /// Biconnected-component id of edge `(u, v)`.
    pub fn edge_label(&self, u: V, v: V) -> V {
        if self.parent[v as usize] == u {
            self.labels[v as usize]
        } else if self.parent[u as usize] == v {
            self.labels[u as usize]
        } else {
            // Non-tree edge: both endpoints share a filtered component.
            self.labels[u as usize]
        }
    }
}

/// Compute biconnectivity labels for every edge of `g`.
pub fn biconnectivity<G: Graph>(g: &G, seed: u64) -> Biconnectivity {
    let n = g.num_vertices();
    // 1. Components and one root (minimum vertex) per component.
    let cc = connectivity(g, 0.2, seed);
    let mut min_of = vec![u32::MAX; n];
    for (v, &l) in cc.iter().enumerate() {
        let l = l as usize;
        min_of[l] = min_of[l].min(v as u32);
    }
    let roots: Vec<V> = par::pack_index(n, |v| min_of[cc[v] as usize] as usize == v);

    // Multi-source BFS forest with levels.
    let parents = atomic_vec(n, UNVISITED);
    let levels = atomic_vec(n, u64::MAX);
    for &r in &roots {
        parents[r as usize].store(r as u64, Ordering::Relaxed);
        levels[r as usize].store(0, Ordering::Relaxed);
    }
    let mut level_lists: Vec<Vec<V>> = vec![roots.clone()];
    let mut frontier = VertexSubset::from_sparse(n, roots);
    let mut round = 0u64;
    while !frontier.is_empty() {
        round += 1;
        let f = ClaimFn { parents: &parents };
        let mut next = edge_map(g, &mut frontier, &f, EdgeMapOpts::default());
        if next.is_empty() {
            break;
        }
        let r = round;
        next.for_each(|v| levels[v as usize].store(r, Ordering::Relaxed));
        level_lists.push(next.as_sparse().to_vec());
        frontier = next;
    }
    let parent: Vec<V> = parents
        .iter()
        .map(|p| p.load(Ordering::Relaxed) as V)
        .collect();
    let level: Vec<u64> = levels.iter().map(|l| l.load(Ordering::Relaxed)).collect();

    // 2. Children arrays (CSR over the forest).
    let mut child_count = vec![0u64; n + 1];
    for v in 0..n {
        if parent[v] as usize != v {
            child_count[parent[v] as usize] += 1;
        }
    }
    let mut child_off = child_count.clone();
    let total_children = par::scan_add(&mut child_off[..n]) as usize;
    child_off[n] = total_children as u64;
    let mut children = vec![0u32; total_children];
    {
        let mut cursor = child_off.clone();
        for (v, &p) in parent.iter().enumerate().take(n) {
            let p = p as usize;
            if p != v {
                children[cursor[p] as usize] = v as u32;
                cursor[p] += 1;
            }
        }
    }
    let kids = |v: usize| &children[child_off[v] as usize..child_off[v + 1] as usize];

    // 3. Subtree sizes (bottom-up) and preorder numbers (top-down).
    let mut size = vec![1u64; n];
    for l in (0..level_lists.len()).rev() {
        let list = &level_lists[l];
        let sp = par::SendPtr(size.as_mut_ptr());
        par::par_for(0, list.len(), |i| {
            let v = list[i] as usize;
            let mut s = 1u64;
            for &c in kids(v) {
                // SAFETY: children are one level deeper, already final.
                s += unsafe { *sp.add(c as usize) };
            }
            // SAFETY: distinct v per iteration.
            unsafe { *sp.add(v) = s };
        });
    }
    let mut pre = vec![0u64; n];
    {
        // Root bases: consecutive preorder ranges per tree.
        let mut base = 0u64;
        for &r in &level_lists[0] {
            pre[r as usize] = base;
            base += size[r as usize];
        }
    }
    for list in level_lists.iter() {
        let pp = par::SendPtr(pre.as_mut_ptr());
        let size_ref: &[u64] = &size;
        par::par_for(0, list.len(), |i| {
            let v = list[i] as usize;
            // SAFETY: pre[v] was assigned when v's parent (or root base) ran.
            let mut next = unsafe { *pp.add(v) } + 1;
            for &c in kids(v) {
                // SAFETY: each child written exactly once, by its parent.
                unsafe { *pp.add(c as usize) = next };
                next += size_ref[c as usize];
            }
        });
    }

    // 4. low/high (bottom-up over levels).
    let mut low: Vec<u64> = pre.clone();
    let mut high: Vec<u64> = pre.clone();
    for l in (0..level_lists.len()).rev() {
        let list = &level_lists[l];
        let lp = par::SendPtr(low.as_mut_ptr());
        let hp = par::SendPtr(high.as_mut_ptr());
        let pre_ref: &[u64] = &pre;
        let parent_ref: &[V] = &parent;
        par::par_for(0, list.len(), |i| {
            let v = list[i];
            let vi = v as usize;
            let mut lo = pre_ref[vi];
            let mut hi = pre_ref[vi];
            g.for_each_edge(v, |u, _| {
                let ui = u as usize;
                let is_tree = parent_ref[vi] == u || parent_ref[ui] == v;
                if !is_tree {
                    lo = lo.min(pre_ref[ui]);
                    hi = hi.max(pre_ref[ui]);
                }
            });
            for &c in kids(vi) {
                // SAFETY: children finalized in the previous (deeper) pass.
                unsafe {
                    lo = lo.min(*lp.add(c as usize));
                    hi = hi.max(*hp.add(c as usize));
                }
            }
            // SAFETY: distinct v per iteration.
            unsafe {
                *lp.add(vi) = lo;
                *hp.add(vi) = hi;
            }
        });
    }

    // 5. Filter + connectivity: keep non-tree edges and non-critical tree
    // edges; drop all root-incident (tree) edges.
    let mut filter = GraphFilter::new(g, true);
    {
        let parent_ref: &[V] = &parent;
        let pre_ref: &[u64] = &pre;
        let size_ref: &[u64] = &size;
        let low_ref: &[u64] = &low;
        let high_ref: &[u64] = &high;
        let is_root = |v: V| parent_ref[v as usize] == v;
        filter.filter_edges(move |a, b, _| {
            let (p, w) = if parent_ref[b as usize] == a {
                (a, b)
            } else if parent_ref[a as usize] == b {
                (b, a)
            } else {
                return true; // non-tree edge: always keep
            };
            if is_root(p) {
                return false;
            }
            // Keep iff subtree(w) escapes subtree(p).
            low_ref[w as usize] < pre_ref[p as usize]
                || high_ref[w as usize] >= pre_ref[p as usize] + size_ref[p as usize]
        });
    }
    let labels = connectivity(&filter, 0.2, par::hash64(seed ^ 0xB1C0));
    let _ = level;
    Biconnectivity { parent, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{build_csr, gen, BuildOptions, EdgeList};
    use std::collections::{HashMap, HashSet};

    /// Compare our labeling against Hopcroft-Tarjan as partitions of edges.
    fn check_against_ht(g: &sage_graph::Csr, seed: u64) {
        let ht = seq::biconnected_components(g);
        let ours = biconnectivity(g, seed);
        let mut ht_groups: HashMap<u32, HashSet<(V, V)>> = HashMap::new();
        let mut our_groups: HashMap<V, HashSet<(V, V)>> = HashMap::new();
        for (&e, &c) in &ht {
            ht_groups.entry(c).or_default().insert(e);
        }
        for u in 0..g.num_vertices() as V {
            for &v in g.neighbors(u) {
                if u < v {
                    our_groups
                        .entry(ours.edge_label(u, v))
                        .or_default()
                        .insert((u, v));
                }
            }
        }
        let ht_partition: HashSet<Vec<(V, V)>> = ht_groups
            .into_values()
            .map(|s| {
                let mut v: Vec<_> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        let our_partition: HashSet<Vec<(V, V)>> = our_groups
            .into_values()
            .map(|s| {
                let mut v: Vec<_> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(our_partition, ht_partition);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        let edges = vec![(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)];
        let g = build_csr(EdgeList::new(5, edges), BuildOptions::default());
        check_against_ht(&g, 1);
    }

    #[test]
    fn path_of_bridges() {
        let g = gen::path(20);
        check_against_ht(&g, 2);
    }

    #[test]
    fn cycle_is_one_component() {
        let g = gen::cycle(30);
        let b = biconnectivity(&g, 3);
        let mut labels = HashSet::new();
        for u in 0..30u32 {
            for &v in g.neighbors(u) {
                labels.insert(b.edge_label(u, v));
            }
        }
        assert_eq!(labels.len(), 1);
    }

    #[test]
    fn random_graphs_match_hopcroft_tarjan() {
        for seed in 0..4u64 {
            let g = gen::erdos_renyi(120, 180 + 40 * seed as usize, seed);
            check_against_ht(&g, seed + 10);
        }
    }

    #[test]
    fn denser_random_graph() {
        let g = gen::rmat(7, 3, gen::RmatParams::default(), 71);
        check_against_ht(&g, 20);
    }

    #[test]
    fn barbell_with_bridge() {
        // Two K5s joined by a single bridge edge.
        let mut edges = Vec::new();
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((4, 5)); // bridge
        let g = build_csr(EdgeList::new(10, edges), BuildOptions::default());
        check_against_ht(&g, 30);
    }

    #[test]
    fn disconnected_graph() {
        let g = gen::two_cliques(6);
        check_against_ht(&g, 40);
    }
}
