//! PageRank (§4.3.5).
//!
//! Dense pull-based iteration: each vertex aggregates its in-neighbors'
//! contributions. Sage's improvement over the Ligra implementation is to
//! perform that aggregation with a *parallel reduction* over the adjacency
//! blocks of high-degree vertices, giving `O(m)` work and `O(log n)` depth
//! per iteration (Table 1: `O(Pit · m)` work, `O(Pit log n)` depth).
//! Dangling mass is redistributed uniformly so ranks stay a distribution.

use sage_graph::{Graph, V};
use sage_parallel as par;

/// Damping factor used throughout the paper's evaluation (§5.3).
pub const DAMPING: f64 = 0.85;

/// Result of a PageRank run.
pub struct PageRankResult {
    /// Final rank vector (sums to 1).
    pub ranks: Vec<f64>,
    /// Iterations until the L1 delta fell below the threshold.
    pub iterations: usize,
}

/// Several restricted-reporting requests answered by **one** shared run —
/// the entry point the serving layer's same-parameter batching uses. Each
/// request is a vertex set; `reports[i]` holds `(vertex, rank)` pairs for
/// request `i`, in request order, read off a single converged rank vector.
pub struct PageRankMultiResult {
    /// One `(vertex, rank)` report per request, in request order.
    pub reports: Vec<Vec<(V, f64)>>,
    /// Iterations the shared power method actually ran.
    pub iterations: usize,
}

/// Run PageRank until the L1 change drops below `eps` (the paper uses
/// `eps = 1e-6`) or `max_iters` is reached, with the paper's damping
/// factor ([`DAMPING`]).
pub fn pagerank<G: Graph>(g: &G, eps: f64, max_iters: usize) -> PageRankResult {
    pagerank_damped(g, eps, max_iters, DAMPING)
}

/// [`pagerank`] with an explicit damping factor — `damping` must be in
/// `(0, 1)`. Runs with the same deterministic reduction order as the
/// default-damping path, so results are bitwise-reproducible per
/// `(eps, max_iters, damping)` parameter set.
pub fn pagerank_damped<G: Graph>(
    g: &G,
    eps: f64,
    max_iters: usize,
    damping: f64,
) -> PageRankResult {
    assert!(
        damping > 0.0 && damping < 1.0,
        "damping factor must be in (0, 1), got {damping}"
    );
    let n = g.num_vertices();
    if n == 0 {
        return PageRankResult {
            ranks: Vec::new(),
            iterations: 0,
        };
    }
    let mut p = vec![1.0 / n as f64; n];
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let (next, l1) = pagerank_iteration_damped(g, &p, damping);
        p = next;
        if l1 < eps {
            break;
        }
    }
    PageRankResult {
        ranks: p,
        iterations,
    }
}

/// Evaluate several restricted-reporting requests over **one** shared
/// PageRank run: the power method runs once per `(eps, max_iters, damping)`
/// parameter set and every request's report is read off the same converged
/// vector — so `k` same-parameter queries cost one run instead of `k`, and
/// each report is bitwise-identical to what a standalone
/// [`pagerank_damped`] + lookup would produce.
pub fn pagerank_multi<G: Graph>(
    g: &G,
    eps: f64,
    max_iters: usize,
    damping: f64,
    requests: &[Vec<V>],
) -> PageRankMultiResult {
    let pr = pagerank_damped(g, eps, max_iters, damping);
    let reports = requests
        .iter()
        .map(|req| {
            req.iter()
                .map(|&v| (v, pr.ranks[v as usize]))
                .collect::<Vec<_>>()
        })
        .collect();
    PageRankMultiResult {
        reports,
        iterations: pr.iterations,
    }
}

/// One PageRank iteration (the paper's standalone `PageRank-Iter` benchmark)
/// at the default [`DAMPING`]; returns the new vector and the L1 change.
pub fn pagerank_iteration<G: Graph>(g: &G, p: &[f64]) -> (Vec<f64>, f64) {
    pagerank_iteration_damped(g, p, DAMPING)
}

/// One PageRank iteration with an explicit damping factor.
pub fn pagerank_iteration_damped<G: Graph>(g: &G, p: &[f64], damping: f64) -> (Vec<f64>, f64) {
    let n = g.num_vertices();
    // Contribution of each vertex, and the total dangling mass.
    let contrib: Vec<f64> = par::par_map(n, |u| {
        let d = g.degree(u as V);
        if d == 0 {
            0.0
        } else {
            p[u] / d as f64
        }
    });
    let dangling = par::reduce_map(
        0,
        n,
        0,
        0.0f64,
        |u| if g.degree(u as V) == 0 { p[u] } else { 0.0 },
        |a, b| a + b,
    );
    let base = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
    let next: Vec<f64> = par::par_map(n, |vi| {
        let v = vi as V;
        let nblocks = g.num_blocks_of(v);
        let sum = if nblocks > 16 {
            // Parallel reduction over adjacency blocks (the Sage
            // optimization of §4.3.5 for high-degree vertices).
            par::reduce_map(
                0,
                nblocks,
                1,
                0.0f64,
                |b| {
                    let mut acc = 0.0;
                    g.decode_block(v, b, |_, u, _| acc += contrib[u as usize]);
                    acc
                },
                |a, b| a + b,
            )
        } else {
            let mut acc = 0.0;
            g.for_each_edge(v, |u, _| acc += contrib[u as usize]);
            acc
        };
        base + damping * sum
    });
    let l1 = par::reduce_map(0, n, 0, 0.0f64, |i| (next[i] - p[i]).abs(), |a, b| a + b);
    (next, l1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn ranks_sum_to_one() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 141);
        let r = pagerank(&g, 1e-8, 200);
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        assert!(r.iterations > 2);
    }

    #[test]
    fn star_center_dominates() {
        let g = gen::star(101);
        let r = pagerank(&g, 1e-10, 500);
        let center = r.ranks[0];
        assert!(r.ranks[1..].iter().all(|&x| x < center));
        // Symmetry among the leaves.
        for w in r.ranks[1..].windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9);
        }
    }

    #[test]
    fn regular_graph_is_uniform() {
        let g = gen::cycle(64);
        let r = pagerank(&g, 1e-12, 500);
        for &x in &r.ranks {
            assert!((x - 1.0 / 64.0).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn compressed_matches_uncompressed() {
        let csr = gen::rmat(8, 10, gen::RmatParams::web(), 143);
        let comp = CompressedCsr::from_csr(&csr, 64);
        let a = pagerank(&csr, 1e-9, 100);
        let b = pagerank(&comp, 1e-9, 100);
        assert_eq!(a.iterations, b.iterations);
        for i in 0..a.ranks.len() {
            assert!((a.ranks[i] - b.ranks[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dangling_mass_redistributed() {
        // Graph with isolated vertices must still sum to 1.
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(10, vec![(0, 1), (1, 2)]),
            sage_graph::BuildOptions::default(),
        );
        let r = pagerank(&g, 1e-10, 300);
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum {sum}");
    }

    #[test]
    fn single_iteration_l1_decreases() {
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 145);
        let n = g.num_vertices();
        let p0 = vec![1.0 / n as f64; n];
        let (p1, l1a) = pagerank_iteration(&g, &p0);
        let (_, l1b) = pagerank_iteration(&g, &p1);
        assert!(l1b < l1a, "L1 must contract: {l1a} -> {l1b}");
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 147);
        let before = Meter::global().snapshot();
        let _ = pagerank(&g, 1e-6, 50);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }

    #[test]
    fn default_damping_is_the_damped_path() {
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 149);
        let a = pagerank(&g, 1e-8, 60);
        let b = pagerank_damped(&g, 1e-8, 60, DAMPING);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.ranks, b.ranks, "delegation must be bitwise-identical");
    }

    #[test]
    fn damping_changes_the_fixed_point() {
        let g = gen::star(50);
        let hot = pagerank_damped(&g, 1e-10, 300, 0.95);
        let cold = pagerank_damped(&g, 1e-10, 300, 0.5);
        // More damping concentrates rank on the star center.
        assert!(hot.ranks[0] > cold.ranks[0]);
    }

    #[test]
    #[should_panic(expected = "damping factor")]
    fn damping_out_of_range_panics() {
        let g = gen::star(4);
        let _ = pagerank_damped(&g, 1e-6, 10, 1.0);
    }

    #[test]
    fn multi_reports_are_bitwise_identical_to_standalone_runs() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 151);
        let requests = vec![vec![0, 5, 9], vec![], vec![17, 17, 3]];
        let multi = pagerank_multi(&g, 1e-8, 40, 0.85, &requests);
        let solo = pagerank_damped(&g, 1e-8, 40, 0.85);
        assert_eq!(multi.iterations, solo.iterations);
        assert_eq!(multi.reports.len(), requests.len());
        for (req, report) in requests.iter().zip(&multi.reports) {
            let expect: Vec<(V, f64)> = req.iter().map(|&v| (v, solo.ranks[v as usize])).collect();
            assert_eq!(report, &expect);
        }
    }
}
