//! Triangle counting (§4.3.4) after Shun–Tangwongsan \[88\].
//!
//! The graphFilter orients every edge from lower to higher degree-rank
//! (§4.3.4: "uses the graph filter structure to orient edges in the graph
//! from lower degree to higher degree"); each remaining directed edge `(u,v)`
//! contributes `|out(u) ∩ out(v)|` triangles, computed by merge intersection
//! over the filter's decode iterator (§4.2.3). The result carries the
//! counters behind Table 4: *intersection work* (merge steps) and *total
//! work* (edges decoded from blocks, including inactive ones).

use crate::filter::GraphFilter;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of triangle counting.
pub struct TriangleResult {
    /// Number of triangles.
    pub count: u64,
    /// Merge-intersection steps performed (Table 4's "Intersection Work").
    pub intersection_work: u64,
    /// Edges decoded from blocks, active or not (Table 4's "Total Work").
    pub total_work: u64,
}

/// Count triangles using a graphFilter with the given block size.
pub fn triangle_count<G: Graph>(g: &G) -> TriangleResult {
    let n = g.num_vertices();
    let rank = |v: V| (g.degree(v), v);
    let mut filter = GraphFilter::new(g, false);
    // Orient: keep (u, v) iff rank(u) < rank(v). Halves the filter (§4.3.4).
    filter.filter_edges(|u, v, _| rank(u) < rank(v));

    let count = AtomicU64::new(0);
    let intersection_work = AtomicU64::new(0);
    let total_work = AtomicU64::new(0);
    let filter_ref = &filter;
    par::par_for_grain(0, n, 16, |ui| {
        let u = ui as V;
        if filter_ref.degree(u) == 0 {
            return;
        }
        let mut out_u: Vec<V> = Vec::with_capacity(filter_ref.degree(u));
        let mut decoded = filter_ref.active_neighbors_into(u, &mut out_u) as u64;
        let mut out_v: Vec<V> = Vec::new();
        let mut local = 0u64;
        let mut steps = 0u64;
        for &v in &out_u {
            decoded += filter_ref.active_neighbors_into(v, &mut out_v) as u64;
            // Merge intersection of sorted out-lists.
            let (mut i, mut j) = (0usize, 0usize);
            while i < out_u.len() && j < out_v.len() {
                steps += 1;
                match out_u[i].cmp(&out_v[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        local += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
        count.fetch_add(local, Ordering::Relaxed);
        intersection_work.fetch_add(steps, Ordering::Relaxed);
        total_work.fetch_add(decoded, Ordering::Relaxed);
    });
    TriangleResult {
        count: count.into_inner(),
        intersection_work: intersection_work.into_inner(),
        total_work: total_work.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn counts_match_reference_on_rmat() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 131);
        assert_eq!(triangle_count(&g).count, seq::triangle_count(&g));
    }

    #[test]
    fn complete_graph_count() {
        let g = gen::complete(10);
        assert_eq!(triangle_count(&g).count, 120); // C(10,3)
    }

    #[test]
    fn triangle_free_graphs() {
        assert_eq!(triangle_count(&gen::path(100)).count, 0);
        assert_eq!(triangle_count(&gen::star(100)).count, 0);
        assert_eq!(triangle_count(&gen::grid(10, 10)).count, 0);
    }

    #[test]
    fn compressed_graph_counts() {
        let csr = gen::rmat(8, 12, gen::RmatParams::web(), 133);
        let g = CompressedCsr::from_csr(&csr, 64);
        assert_eq!(triangle_count(&g).count, seq::triangle_count(&csr));
    }

    #[test]
    fn work_counters_are_sane() {
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 135);
        let r = triangle_count(&g);
        assert!(r.intersection_work >= r.count);
        assert!(r.total_work as usize >= g.num_edges() / 2);
    }

    #[test]
    fn block_size_changes_total_work_not_count() {
        let base = gen::rmat(8, 16, gen::RmatParams::default(), 137);
        let mut counts = Vec::new();
        for bs in [64usize, 128, 256] {
            let c = CompressedCsr::from_csr(&base, bs);
            let r = triangle_count(&c);
            counts.push(r.count);
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[1], counts[2]);
        assert_eq!(counts[0], seq::triangle_count(&base));
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 139);
        let before = Meter::global().snapshot();
        let _ = triangle_count(&g);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
