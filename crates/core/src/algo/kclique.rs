//! k-clique counting — the paper's §3.2 extension example: "counting and
//! enumerating k-cliques, which were very recently studied in the in-memory
//! setting \[82\], can be adapted to the PSAM using the filtering technique
//! proposed in this paper."
//!
//! The graphFilter orients edges from lower to higher degree-rank (as in
//! triangle counting, which is the `k = 3` case); k-cliques are counted by
//! recursive candidate-set intersection over the oriented out-neighborhoods,
//! after Shi-Dhulipala-Shun. Small memory: one candidate stack of at most
//! `Δ_out · k` words per worker.

use crate::filter::GraphFilter;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// Intersect two sorted vertex lists into `out`.
fn intersect_into(a: &[V], b: &[V], out: &mut Vec<V>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn count_rec<G: Graph>(
    filter: &GraphFilter<'_, G>,
    cands: &[V],
    depth: usize,
    scratch: &mut Vec<Vec<V>>,
    ngh_buf: &mut Vec<V>,
) -> u64 {
    if depth == 1 {
        return cands.len() as u64;
    }
    let mut total = 0u64;
    let mut next = scratch.pop().unwrap_or_default();
    for &u in cands {
        filter.active_neighbors_into(u, ngh_buf);
        intersect_into(cands, ngh_buf, &mut next);
        if next.len() as u64 >= depth as u64 - 1 {
            total += count_rec(filter, &next, depth - 1, scratch, ngh_buf);
        }
    }
    scratch.push(next);
    total
}

/// Count the k-cliques of `g` (`k >= 1`). `k = 3` equals triangle counting.
pub fn kclique_count<G: Graph>(g: &G, k: usize) -> u64 {
    assert!(k >= 1, "k must be positive");
    let n = g.num_vertices();
    if k == 1 {
        return n as u64;
    }
    if k == 2 {
        return g.num_edges() as u64 / 2;
    }
    let rank = |v: V| (g.degree(v), v);
    let mut filter = GraphFilter::new(g, false);
    filter.filter_edges(|u, v, _| rank(u) < rank(v));
    let total = AtomicU64::new(0);
    let filter_ref = &filter;
    par::par_for_grain(0, n, 8, |vi| {
        let v = vi as V;
        if filter_ref.degree(v) + 1 < k {
            return;
        }
        let mut cands = Vec::with_capacity(filter_ref.degree(v));
        filter_ref.active_neighbors_into(v, &mut cands);
        let mut scratch: Vec<Vec<V>> = Vec::new();
        let mut ngh_buf = Vec::new();
        let c = count_rec(filter_ref, &cands, k - 1, &mut scratch, &mut ngh_buf);
        if c > 0 {
            total.fetch_add(c, Ordering::Relaxed);
        }
    });
    total.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::gen;

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_counts_binomials() {
        let g = gen::complete(10);
        for k in 1..=6 {
            assert_eq!(kclique_count(&g, k), binom(10, k as u64), "k={k}");
        }
    }

    #[test]
    fn k3_equals_triangle_count() {
        let g = gen::rmat(8, 10, gen::RmatParams::default(), 151);
        assert_eq!(kclique_count(&g, 3), seq::triangle_count(&g));
    }

    #[test]
    fn k4_on_two_overlapping_cliques() {
        // K5 sharing an edge with K4: C(5,4) + C(4,4) = 5 + 1.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        // K4 on {3,4,5,6} shares edge (3,4).
        for &(a, b) in &[(3u32, 5), (3, 6), (4, 5), (4, 6), (5, 6)] {
            edges.push((a, b));
        }
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(7, edges),
            sage_graph::BuildOptions::default(),
        );
        assert_eq!(kclique_count(&g, 4), 6);
        assert_eq!(kclique_count(&g, 5), 1);
        assert_eq!(kclique_count(&g, 6), 0);
    }

    #[test]
    fn triangle_free_graphs_have_no_cliques() {
        assert_eq!(kclique_count(&gen::grid(8, 8), 3), 0);
        assert_eq!(kclique_count(&gen::star(50), 3), 0);
        assert_eq!(kclique_count(&gen::path(30), 4), 0);
    }

    #[test]
    fn degenerate_k() {
        let g = gen::path(10);
        assert_eq!(kclique_count(&g, 1), 10);
        assert_eq!(kclique_count(&g, 2), 9);
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(7, 8, gen::RmatParams::default(), 153);
        let before = Meter::global().snapshot();
        let _ = kclique_count(&g, 4);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
