//! Local graph algorithms — the paper's other §3.2 applicability example:
//! "local search problems including CoSimRank, personalized PageRank, and
//! other local clustering problems naturally fit in the regular PSAM model."
//!
//! Implements the Andersen–Chung–Lang push algorithm for approximate
//! personalized PageRank and a sweep-cut local clustering on top of it. The
//! state is two sparse maps proportional to the support of the solution —
//! far below `O(n)` — and the graph is only read.

use sage_graph::{Graph, V};
use std::collections::HashMap;

/// Approximate personalized PageRank from `src`.
///
/// Returns `(estimate, residual)` maps satisfying the ACL invariant
/// `p(v) + α·r(v) ≤ ppr(v)` with `r(v) < eps · deg(v)` for all v.
/// `alpha` is the teleport probability.
pub fn ppr_push<G: Graph>(
    g: &G,
    src: V,
    alpha: f64,
    eps: f64,
) -> (HashMap<V, f64>, HashMap<V, f64>) {
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0);
    assert!(eps > 0.0);
    let mut p: HashMap<V, f64> = HashMap::new();
    let mut r: HashMap<V, f64> = HashMap::new();
    r.insert(src, 1.0);
    let mut queue = vec![src];
    while let Some(u) = queue.pop() {
        let deg = g.degree(u).max(1) as f64;
        let ru = r.get(&u).copied().unwrap_or(0.0);
        if ru < eps * deg {
            continue;
        }
        // Push: keep alpha fraction, spread the rest over the neighbors.
        *p.entry(u).or_insert(0.0) += alpha * ru;
        r.insert(u, 0.0);
        let spread = (1.0 - alpha) * ru / deg;
        g.for_each_edge(u, |v, _| {
            let rv = r.entry(v).or_insert(0.0);
            *rv += spread;
            if *rv >= eps * g.degree(v).max(1) as f64 {
                queue.push(v);
            }
        });
    }
    (p, r)
}

/// Sweep cut over the degree-normalized PPR vector: returns the prefix with
/// the best conductance and that conductance.
pub fn sweep_cut<G: Graph>(g: &G, scores: &HashMap<V, f64>) -> (Vec<V>, f64) {
    if scores.is_empty() {
        return (Vec::new(), 1.0);
    }
    let mut order: Vec<(V, f64)> = scores
        .iter()
        .map(|(&v, &s)| (v, s / g.degree(v).max(1) as f64))
        .collect();
    order.sort_by(|a, b| b.1.total_cmp(&a.1));
    let total_vol = 2.0 * g.num_edges() as f64 / 2.0;
    let mut in_set: std::collections::HashSet<V> = Default::default();
    let mut vol = 0.0f64;
    let mut cut = 0.0f64;
    let mut best = (Vec::new(), 1.0f64);
    let mut prefix = Vec::new();
    for &(v, _) in &order {
        // Adding v: edges to the set leave the cut; others join it.
        let mut to_set = 0.0;
        g.for_each_edge(v, |u, _| {
            if in_set.contains(&u) {
                to_set += 1.0;
            }
        });
        let deg = g.degree(v) as f64;
        cut += deg - 2.0 * to_set;
        vol += deg;
        in_set.insert(v);
        prefix.push(v);
        if total_vol - vol < 1.0 {
            // The set swallowed the whole graph: conductance is undefined
            // (cut 0 over an empty complement), not a better cluster.
            break;
        }
        let denom = vol.min(total_vol - vol).max(1.0);
        let phi = cut / denom;
        if phi < best.1 {
            best = (prefix.clone(), phi);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_graph::gen;

    #[test]
    fn push_invariant_residuals_below_threshold() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 161);
        let eps = 1e-4;
        let (_, r) = ppr_push(&g, 0, 0.15, eps);
        for (&v, &rv) in &r {
            assert!(
                rv < eps * g.degree(v).max(1) as f64 + 1e-12,
                "residual of {v} too large: {rv}"
            );
        }
    }

    #[test]
    fn mass_is_conserved() {
        // p mass + residual mass == 1 at all times (pushes conserve mass).
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 163);
        let (p, r) = ppr_push(&g, 3, 0.2, 1e-5);
        let total: f64 = p.values().sum::<f64>() + r.values().sum::<f64>();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
    }

    #[test]
    fn support_is_local() {
        // On a long path, mass from one end cannot reach the other.
        let g = gen::path(10_000);
        let (p, r) = ppr_push(&g, 0, 0.15, 1e-4);
        let touched: std::collections::HashSet<u32> = p.keys().chain(r.keys()).copied().collect();
        assert!(
            touched.len() < 200,
            "support {} is not local",
            touched.len()
        );
        assert!(touched.iter().all(|&v| v < 200));
    }

    #[test]
    fn sweep_finds_a_planted_community() {
        // Two dense cliques joined by one edge: sweeping PPR from inside one
        // clique must cut at the bridge.
        let g = gen::two_cliques(20);
        let mut edges = Vec::new();
        for u in 0..g.num_vertices() as V {
            for &v in g.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        edges.push((0, 20)); // bridge
        let joined = sage_graph::build_csr(
            sage_graph::EdgeList::new(40, edges),
            sage_graph::BuildOptions::default(),
        );
        let (p, _) = ppr_push(&joined, 5, 0.15, 1e-6);
        let (cluster, phi) = sweep_cut(&joined, &p);
        let members: std::collections::HashSet<V> = cluster.into_iter().collect();
        let in_first = members.iter().filter(|&&v| v < 20).count();
        assert!(in_first >= 18, "cluster missed the clique: {in_first}/20");
        assert!(members.iter().filter(|&&v| v >= 20).count() <= 2);
        assert!(phi < 0.05, "conductance {phi} too high");
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 165);
        let before = Meter::global().snapshot();
        let (p, _) = ppr_push(&g, 0, 0.15, 1e-5);
        let _ = sweep_cut(&g, &p);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
