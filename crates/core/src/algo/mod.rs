//! The 18 graph problems of Table 1, implemented PSAM-style: no writes to the
//! graph, `O(n)` (or `O(n + m/log n)`) words of DRAM state.
//!
//! | Module | Problem(s) | Technique |
//! |---|---|---|
//! | [`bfs`] | Breadth-first search | edgeMapChunked |
//! | [`msbfs`] | Multi-source BFS (≤64 sources, batched serving) | bit-parallel masks |
//! | [`wbfs`] | Integral-weight SSSP | chunked + bucketing |
//! | [`bellman_ford`] | General-weight SSSP | chunked |
//! | [`widest_path`] | Single-source widest path (2 impls) | chunked (+ bucketing) |
//! | [`betweenness`] | Single-source betweenness | chunked, fwd/bwd |
//! | [`spanner`] | O(k)-spanner (MPX15) | LDD |
//! | [`ldd`] | Low-diameter decomposition | chunked |
//! | [`connectivity`] | Connectivity | LDD + contraction |
//! | [`spanning_forest`] | Spanning forest | LDD + contraction |
//! | [`biconnectivity`] | Biconnectivity | BFS tree + filtered CC |
//! | [`mis`] | Maximal independent set | rootset greedy |
//! | [`maximal_matching`] | Maximal matching | graphFilter |
//! | [`coloring`] | (Δ+1) graph coloring | Jones–Plassmann LF |
//! | [`set_cover`] | Approximate set cover | bucketing + graphFilter |
//! | [`kcore`] | k-core (coreness) | bucketing + histogram |
//! | [`densest_subgraph`] | (2+ε)-approx densest subgraph | peeling + histogram |
//! | [`triangle`] | Triangle counting | graphFilter orientation |
//! | [`pagerank`] | PageRank (+ single iteration) | dense reduce |
//! | [`kclique`] | k-clique counting (§3.2 extension) | graphFilter orientation |

pub mod bellman_ford;
pub mod betweenness;
pub mod bfs;
pub mod biconnectivity;
pub mod coloring;
pub mod connectivity;
pub mod densest_subgraph;
pub mod kclique;
pub mod kcore;
pub mod ldd;
pub mod local;
pub mod maximal_matching;
pub mod mis;
pub mod msbfs;
pub mod pagerank;
pub mod set_cover;
pub mod spanner;
pub mod spanning_forest;
pub mod triangle;
pub mod wbfs;
pub mod widest_path;

pub(crate) mod common;
