//! Connectivity via LDD + contraction (§4.3.2), after Shun et al. \[86\].
//!
//! One round of LDD with constant β leaves `O(βm)` inter-cluster edges in
//! expectation (and `O(n)` for `β = O(1/log n)` by Corollary 3.1 of \[69\]);
//! the deduplicated inter-cluster graph is built *in small memory* and the
//! algorithm recurses. `O(m)` expected work, `O(log³ n)` depth whp,
//! `O(n)` words of small memory (Theorem C.2).

use crate::algo::ldd::ldd;
use sage_graph::{build_csr, BuildOptions, EdgeList, Graph, V};
use sage_parallel as par;
use sage_parallel::ConcurrentMap;

/// Pack an undirected pair into a canonical u64 key.
#[inline]
pub(crate) fn pair_key(a: V, b: V) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

/// Connected-component labels: `labels[v]` is a vertex id shared by exactly
/// the vertices of `v`'s component.
pub fn connectivity<G: Graph>(g: &G, beta: f64, seed: u64) -> Vec<V> {
    connectivity_rec(g, beta, seed, 0)
}

fn connectivity_rec<G: Graph>(g: &G, beta: f64, seed: u64, depth: usize) -> Vec<V> {
    assert!(depth < 64, "contraction failed to converge");
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    if g.num_edges() == 0 {
        return (0..n as V).collect();
    }
    let decomposition = ldd(g, beta, seed);
    let cluster = decomposition.cluster;

    // Deduplicate inter-cluster edges into small memory.
    let inter = crate::algo::ldd::count_inter_cluster_edges(g, &cluster);
    if inter == 0 {
        return cluster;
    }
    let map = ConcurrentMap::with_capacity((inter as usize).max(16));
    par::par_for(0, n, |vi| {
        let v = vi as V;
        let cv = cluster[vi];
        g.for_each_edge(v, |u, _| {
            let cu = cluster[u as usize];
            if cv != cu {
                map.insert_if_absent(pair_key(cv, cu), 0);
            }
        });
    });
    let contracted: Vec<(V, V)> = map
        .entries()
        .into_iter()
        .map(|(k, _)| ((k >> 32) as V, (k & 0xFFFF_FFFF) as V))
        .collect();

    // Relabel cluster centers densely.
    let centers: Vec<V> = par::pack_index(n, |v| cluster[v] as usize == v);
    let mut dense_of = vec![0u32; n];
    {
        let dp = par::SendPtr(dense_of.as_mut_ptr());
        let centers_ref: &[V] = &centers;
        // SAFETY: centers are distinct indices, so writes are disjoint.
        par::par_for(0, centers.len(), |i| unsafe {
            *dp.add(centers_ref[i] as usize) = i as u32;
        });
    }
    let edges: Vec<(V, V)> = contracted
        .iter()
        .map(|&(a, b)| (dense_of[a as usize], dense_of[b as usize]))
        .collect();
    let mut cg = build_csr(
        EdgeList::new(centers.len(), edges),
        BuildOptions {
            symmetrize: true,
            block_size: 64,
        },
    );
    // The contracted graph is algorithm state: it lives in the PSAM's small
    // memory (Theorem C.2), so its reads are DRAM traffic.
    cg.mark_dram_resident();
    let sub = connectivity_rec(
        &cg,
        beta,
        par::hash64(seed.wrapping_add(depth as u64 + 1)),
        depth + 1,
    );
    // Compose: label of v = center label of its cluster's component.
    par::par_map(n, |v| {
        centers[sub[dense_of[cluster[v] as usize] as usize] as usize]
    })
}

/// Number of connected components implied by a labeling.
pub fn num_components(labels: &[V]) -> usize {
    let mut sorted = labels.to_vec();
    par::par_sort(&mut sorted);
    sorted.dedup();
    sorted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    fn check_matches_union_find(g: &sage_graph::Csr, seed: u64) {
        let got = seq::canonicalize_labels(&connectivity(g, 0.2, seed));
        let want = seq::canonicalize_labels(&seq::components(g));
        assert_eq!(got, want);
    }

    #[test]
    fn matches_union_find_on_rmat() {
        let g = gen::rmat(10, 4, gen::RmatParams::default(), 41);
        check_matches_union_find(&g, 1);
    }

    #[test]
    fn matches_union_find_on_sparse_fragments() {
        // Very sparse: many components.
        let g = gen::erdos_renyi(4000, 1500, 5);
        check_matches_union_find(&g, 2);
    }

    #[test]
    fn two_cliques_two_components() {
        let g = gen::two_cliques(25);
        let labels = connectivity(&g, 0.2, 3);
        assert_eq!(num_components(&labels), 2);
        check_matches_union_find(&g, 3);
    }

    #[test]
    fn grid_single_component() {
        let g = gen::grid(30, 30);
        let labels = connectivity(&g, 0.2, 4);
        assert_eq!(num_components(&labels), 1);
    }

    #[test]
    fn compressed_graph_connectivity() {
        let csr = gen::rmat(9, 4, gen::RmatParams::default(), 47);
        let g = CompressedCsr::from_csr(&csr, 64);
        let got = seq::canonicalize_labels(&connectivity(&g, 0.2, 9));
        let want = seq::canonicalize_labels(&seq::components(&csr));
        assert_eq!(got, want);
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(10, vec![]),
            sage_graph::BuildOptions::default(),
        );
        let labels = connectivity(&g, 0.2, 1);
        assert_eq!(labels, (0..10).collect::<Vec<V>>());
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 49);
        let before = Meter::global().snapshot();
        let _ = connectivity(&g, 0.2, 5);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
