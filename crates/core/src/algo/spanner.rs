//! O(k)-spanner (§4.3.1) after Miller, Peng, Vladu, Xu \[69\].
//!
//! Run LDD with `β = ln n / (2k)`; the spanner is the union of the LDD BFS
//! trees and one edge per pair of adjacent clusters. Size `O(n^{1+1/k})`
//! (`O(n)` for `k = Θ(log n)`, the paper's default `k = ⌈log₂ n⌉`), stretch
//! `O(k)` whp.

use crate::algo::connectivity::pair_key;
use crate::algo::ldd::ldd;
use sage_graph::{Graph, NONE_V, V};
use sage_parallel as par;
use sage_parallel::ConcurrentMap;

/// Build an O(k)-spanner; returns its undirected edge list.
pub fn spanner<G: Graph>(g: &G, k: usize, seed: u64) -> Vec<(V, V)> {
    assert!(k >= 1);
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let beta = ((n.max(2) as f64).ln() / (2.0 * k as f64)).clamp(1e-6, 0.95);
    let d = ldd(g, beta, seed);

    // Tree edges.
    let mut edges: Vec<(V, V)> = (0..n)
        .filter(|&v| d.parent[v] != NONE_V && d.parent[v] as usize != v)
        .map(|v| (d.parent[v], v as V))
        .collect();

    // One witness edge per adjacent cluster pair.
    let inter = crate::algo::ldd::count_inter_cluster_edges(g, &d.cluster);
    if inter > 0 {
        let map = ConcurrentMap::with_capacity((inter as usize).max(16));
        let cluster = &d.cluster;
        par::par_for(0, n, |vi| {
            let v = vi as V;
            let cv = cluster[vi];
            g.for_each_edge(v, |u, _| {
                let cu = cluster[u as usize];
                if cv != cu {
                    map.insert_if_absent(pair_key(cv, cu), ((v as u64) << 32) | u as u64);
                }
            });
        });
        edges.extend(map.entries().into_iter().map(|(_, enc)| {
            let enc = enc - 1; // undo the +1 storage convention
            ((enc >> 32) as V, (enc & 0xFFFF_FFFF) as V)
        }));
    }
    edges
}

/// The default stretch parameter used in the paper's evaluation:
/// `k = ⌈log₂ n⌉` (§4.3.1), giving an `O(log n)`-spanner of size `O(n)`.
pub fn default_k(n: usize) -> usize {
    (usize::BITS - n.max(2).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{build_csr, gen, BuildOptions, EdgeList};

    fn spanner_graph(n: usize, edges: &[(V, V)]) -> sage_graph::Csr {
        build_csr(EdgeList::new(n, edges.to_vec()), BuildOptions::default())
    }

    #[test]
    fn spanner_edges_are_graph_edges() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 61);
        let s = spanner(&g, default_k(g.num_vertices()), 1);
        for &(u, v) in &s {
            assert!(g.neighbors(u).contains(&v));
        }
    }

    #[test]
    fn spanner_preserves_connectivity() {
        let g = gen::rmat(9, 6, gen::RmatParams::default(), 63);
        let s = spanner(&g, default_k(g.num_vertices()), 2);
        let sg = spanner_graph(g.num_vertices(), &s);
        let want = seq::canonicalize_labels(&seq::components(&g));
        let got = seq::canonicalize_labels(&seq::components(&sg));
        assert_eq!(got, want);
    }

    #[test]
    fn spanner_is_sparse_for_log_k() {
        let g = gen::rmat(11, 16, gen::RmatParams::default(), 65);
        let n = g.num_vertices();
        let s = spanner(&g, default_k(n), 3);
        // Size O(n) with small constants; allow 4n.
        assert!(
            s.len() < 4 * n,
            "spanner has {} edges for n = {n} (m = {})",
            s.len(),
            g.num_edges()
        );
    }

    #[test]
    fn stretch_is_bounded_on_sample_pairs() {
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 67);
        let n = g.num_vertices();
        let k = default_k(n);
        let s = spanner(&g, k, 4);
        let sg = spanner_graph(n, &s);
        for src in [0u32, 17, 99] {
            let orig = seq::bfs_levels(&g, src);
            let span = seq::bfs_levels(&sg, src);
            for v in 0..n {
                if orig[v] == u64::MAX {
                    assert_eq!(span[v], u64::MAX);
                    continue;
                }
                assert!(
                    span[v] != u64::MAX,
                    "pair ({src},{v}) disconnected in spanner"
                );
                // O(k) stretch: use a generous 8k + 4 bound for small n.
                assert!(
                    span[v] <= (8 * k as u64) * orig[v].max(1) + 4,
                    "stretch {} -> {} exceeds bound (k={k})",
                    orig[v],
                    span[v]
                );
            }
        }
    }

    #[test]
    fn tree_input_keeps_all_edges() {
        let g = gen::path(200);
        let s = spanner(&g, 4, 5);
        assert_eq!(s.len(), 199, "a tree is its only spanner");
    }
}
