//! (2(1+ε))-approximate densest subgraph (§4.3.4), after Charikar \[28\] /
//! Bahmani et al.
//!
//! Repeatedly remove every vertex of induced degree `< 2(1+ε)·ρ(S)`; the
//! densest prefix over all rounds is a `2(1+ε)` approximation. Removals are
//! processed with the same histogram machinery as k-core; `O(log n)` rounds
//! for constant ε, `O(m)` work.

use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of the densest-subgraph approximation.
pub struct DensestResult {
    /// Density `|E(S)| / |S|` of the best subgraph found.
    pub density: f64,
    /// The vertices of that subgraph.
    pub subset: Vec<V>,
    /// Peeling rounds executed.
    pub rounds: usize,
}

/// Run the peeling approximation with parameter `eps` (the paper evaluates
/// `eps = 0.001`, producing subgraphs of similar density to Charikar's exact
/// 2-approximation, §5.3).
pub fn densest_subgraph<G: Graph>(g: &G, eps: f64) -> DensestResult {
    assert!(eps > 0.0);
    let n = g.num_vertices();
    let degrees: Vec<AtomicU64> = (0..n)
        .map(|v| AtomicU64::new(g.degree(v as V) as u64))
        .collect();
    // Round in which each vertex was removed (u32::MAX = still alive).
    let mut removed_round = vec![u32::MAX; n];
    let mut alive: Vec<V> = (0..n as V).collect();
    let mut m_alive = g.num_edges() as u64;
    // Dense scratch is reused across rounds (and across queries, via the
    // current QueryArena); see the histogram module docs.
    let mut histogram = crate::arena::fetch_histogram(g.num_edges());

    let mut best_density = 0.0f64;
    let mut best_round = 0u32;
    let mut round = 0u32;
    while !alive.is_empty() {
        let density = m_alive as f64 / 2.0 / alive.len() as f64;
        if density > best_density {
            best_density = density;
            best_round = round;
        }
        if m_alive == 0 {
            // Only isolated vertices remain; nothing denser can follow.
            for &v in &alive {
                removed_round[v as usize] = round;
            }
            round += 1;
            break;
        }
        let threshold = 2.0 * (1.0 + eps) * density;
        let alive_ref: &[V] = &alive;
        let deg_ref = &degrees;
        let to_remove: Vec<V> = par::pack_index(alive.len(), |i| {
            (deg_ref[alive_ref[i] as usize].load(Ordering::Relaxed) as f64) < threshold
        })
        .into_iter()
        .map(|i| alive[i as usize])
        .collect();
        debug_assert!(
            !to_remove.is_empty(),
            "a vertex below 2(1+eps)·avg degree always exists"
        );
        for &v in &to_remove {
            removed_round[v as usize] = round;
        }
        // Decrement surviving neighbors via histogram; track removed edges.
        let rm: &[V] = &to_remove;
        let rr: &[u32] = &removed_round;
        let out_deg_removed = par::reduce_add(0, rm.len(), |i| {
            deg_ref[rm[i] as usize].load(Ordering::Relaxed)
        });
        let total_keys = par::reduce_add(0, rm.len(), |i| g.degree(rm[i]) as u64) as usize;
        let counts = histogram.count(rm.len(), total_keys, n, |i, emit| {
            g.for_each_edge(rm[i], |u, _| {
                if rr[u as usize] == u32::MAX {
                    emit(u);
                }
            });
        });
        sage_nvram::meter::aux_read(histogram.last_work());
        // Histogram keys are distinct: decrement in parallel.
        let counts_ref: &[(u32, u32)] = &counts;
        let decrements = par::reduce_add(0, counts.len(), |i| {
            let (u, c) = counts_ref[i];
            let d = degrees[u as usize].load(Ordering::Relaxed);
            degrees[u as usize].store(d.saturating_sub(c as u64), Ordering::Relaxed);
            c as u64
        });
        // Directed edges removed: those out of R plus those into R from
        // survivors (the within-R ones are inside out_deg_removed already).
        m_alive -= out_deg_removed + decrements;
        alive = par::pack_index(alive_ref.len(), |i| rr[alive_ref[i] as usize] == u32::MAX)
            .into_iter()
            .map(|i| alive_ref[i as usize])
            .collect();
        round += 1;
    }
    crate::arena::release_histogram(histogram);
    let subset: Vec<V> = par::pack_index(n, |v| removed_round[v] >= best_round);
    DensestResult {
        density: best_density,
        subset,
        rounds: round as usize,
    }
}

/// Exact density of an induced subgraph (test / verification helper).
pub fn density_of<G: Graph>(g: &G, subset: &[V]) -> f64 {
    if subset.is_empty() {
        return 0.0;
    }
    let mut inset = vec![false; g.num_vertices()];
    for &v in subset {
        inset[v as usize] = true;
    }
    let directed = par::reduce_add(0, subset.len(), |i| {
        let mut c = 0u64;
        g.for_each_edge(subset[i], |u, _| {
            if inset[u as usize] {
                c += 1;
            }
        });
        c
    });
    directed as f64 / 2.0 / subset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::gen;

    #[test]
    fn reported_density_matches_subset() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 121);
        let r = densest_subgraph(&g, 0.1);
        let actual = density_of(&g, &r.subset);
        assert!(
            (actual - r.density).abs() < 1e-9,
            "reported {} vs actual {actual}",
            r.density
        );
    }

    #[test]
    fn meets_coreness_lower_bound() {
        // The kmax-core has density >= kmax/2, so the output must reach
        // kmax / (2 (1+eps)).
        let g = gen::rmat(9, 10, gen::RmatParams::default(), 123);
        let eps = 0.1;
        let r = densest_subgraph(&g, eps);
        let kmax = *seq::coreness(&g).iter().max().unwrap() as f64;
        assert!(
            r.density >= kmax / (2.0 * (1.0 + eps)) - 1e-9,
            "density {} below bound {}",
            r.density,
            kmax / (2.0 * (1.0 + eps))
        );
    }

    #[test]
    fn planted_clique_is_found() {
        // Sparse background + K20: the clique dominates density.
        let mut edges: Vec<(V, V)> = (0..500u32).map(|i| (i, (i + 1) % 500)).collect();
        for i in 0..20u32 {
            for j in (i + 1)..20 {
                edges.push((500 + i, 500 + j));
            }
        }
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(520, edges),
            sage_graph::BuildOptions::default(),
        );
        let r = densest_subgraph(&g, 0.05);
        // K20 density = 9.5.
        assert!(r.density >= 9.5 / (2.0 * 1.05), "density {}", r.density);
        // The found subset should be mostly clique vertices.
        let clique_members = r.subset.iter().filter(|&&v| v >= 500).count();
        assert!(
            clique_members >= 18,
            "only {clique_members} clique vertices found"
        );
    }

    #[test]
    fn whole_graph_when_regular() {
        let g = gen::cycle(100);
        let r = densest_subgraph(&g, 0.1);
        assert!(
            (r.density - 1.0).abs() < 0.01,
            "cycle density {}",
            r.density
        );
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 125);
        let before = Meter::global().snapshot();
        let _ = densest_subgraph(&g, 0.1);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
