//! General-weight SSSP — frontier-based Bellman-Ford (§4.3.1).
//!
//! `O(dG · m)` PSAM work, `O(dG log n)` depth. Each round relaxes the edges
//! out of the vertices whose distance improved in the previous round; a
//! per-round claim flag keeps the output frontier duplicate-free (Ligra's
//! `Visited` array).

use crate::algo::common::{atomic_min, atomic_vec, unwrap_atomic};
use crate::edge_map::{edge_map, EdgeMapFn, EdgeMapOpts};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct BfFn<'a> {
    dist: &'a [AtomicU64],
    claimed: &'a [AtomicBool],
}

impl EdgeMapFn for BfFn<'_> {
    fn update(&self, s: V, d: V, w: u32) -> bool {
        let nd = self.dist[s as usize].load(Ordering::Relaxed) + w as u64;
        if nd < self.dist[d as usize].load(Ordering::Relaxed) {
            self.dist[d as usize].store(nd, Ordering::Relaxed);
            if !self.claimed[d as usize].swap(true, Ordering::Relaxed) {
                return true;
            }
        }
        false
    }

    fn update_atomic(&self, s: V, d: V, w: u32) -> bool {
        let nd = self.dist[s as usize].load(Ordering::Relaxed) + w as u64;
        if atomic_min(&self.dist[d as usize], nd) {
            // First improver in this round emits d exactly once.
            // ORDERING: AcqRel — emission token: Release publishes the
            // improved distance before the token, Acquire orders the winner
            // after prior claimants.
            return !self.claimed[d as usize].swap(true, Ordering::AcqRel);
        }
        false
    }

    fn cond(&self, _d: V) -> bool {
        true
    }
}

/// Shortest-path distances from `src` (`u64::MAX` = unreachable).
///
/// Returns `None` if the relaxation fails to converge within `n` rounds,
/// which for non-negative weights cannot happen (and signals a negative
/// cycle in the general setting the algorithm supports).
pub fn bellman_ford<G: Graph>(g: &G, src: V) -> Option<Vec<u64>> {
    assert!(g.is_weighted(), "Bellman-Ford requires a weighted graph");
    let n = g.num_vertices();
    let dist = atomic_vec(n, u64::MAX);
    dist[src as usize].store(0, Ordering::Relaxed);
    let claimed: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut frontier = VertexSubset::single(n, src);
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        if rounds > n + 1 {
            return None; // negative cycle (not reachable with our weights)
        }
        let f = BfFn {
            dist: &dist,
            claimed: &claimed,
        };
        let next = edge_map(g, &mut frontier, &f, EdgeMapOpts::default());
        // Reset the claim flags of the next frontier for the following round.
        next.for_each(|v| claimed[v as usize].store(false, Ordering::Relaxed));
        frontier = next;
    }
    Some(unwrap_atomic(dist))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{build_csr, gen, BuildOptions};

    fn weighted(scale: u32, seed: u64) -> sage_graph::Csr {
        let list =
            gen::rmat_edges(scale, 8, gen::RmatParams::default(), seed).with_random_weights(seed);
        build_csr(list, BuildOptions::default())
    }

    #[test]
    fn matches_dijkstra() {
        let g = weighted(9, 4);
        assert_eq!(bellman_ford(&g, 0).unwrap(), seq::dijkstra(&g, 0));
    }

    #[test]
    fn agrees_with_wbfs() {
        let g = weighted(8, 6);
        assert_eq!(
            bellman_ford(&g, 2).unwrap(),
            super::super::wbfs::wbfs(&g, 2)
        );
    }

    #[test]
    fn weighted_grid_long_paths() {
        let base = gen::grid(20, 20);
        // Re-weight the grid edges.
        let mut edges = Vec::new();
        for u in 0..base.num_vertices() as V {
            for &v in base.neighbors(u) {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        let list = sage_graph::EdgeList::new(400, edges).with_random_weights(8);
        let g = build_csr(list, BuildOptions::default());
        assert_eq!(bellman_ford(&g, 0).unwrap(), seq::dijkstra(&g, 0));
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = weighted(8, 3);
        let before = Meter::global().snapshot();
        let _ = bellman_ford(&g, 0);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
