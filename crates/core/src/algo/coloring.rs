//! (Δ+1) graph coloring (§4.3.3) — Jones–Plassmann with the
//! largest-degree-first (LF) heuristic.
//!
//! Each vertex waits for its higher-priority neighbors (degree, then random
//! tie-break) to be colored, then greedily takes the smallest free color.
//! The dependency counters are one word per vertex; rounds proceed by
//! frontier, giving the `O(log n + L log Δ)` depth of Table 1.

use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU32, Ordering};

const UNCOLORED: u32 = u32::MAX;

#[inline]
fn rank<G: Graph>(g: &G, seed: u64, v: V) -> (usize, u64, V) {
    (g.degree(v), par::hash64(seed ^ v as u64), v)
}

/// Color the graph with at most Δ+1 colors; returns the color per vertex.
pub fn coloring<G: Graph>(g: &G, seed: u64) -> Vec<u32> {
    let n = g.num_vertices();
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNCOLORED)).collect();
    // Dependency counts: higher-ranked neighbors still uncolored.
    let counts: Vec<AtomicU32> = {
        let tmp: Vec<u32> = par::par_map(n, |vi| {
            let v = vi as V;
            let rv = rank(g, seed, v);
            let mut c = 0u32;
            g.for_each_edge(v, |u, _| {
                if rank(g, seed, u) > rv {
                    c += 1;
                }
            });
            c
        });
        tmp.into_iter().map(AtomicU32::new).collect()
    };
    let mut frontier: Vec<V> = par::pack_index(n, |v| counts[v].load(Ordering::Relaxed) == 0);
    let mut colored = 0usize;
    while !frontier.is_empty() {
        colored += frontier.len();
        // Color the ready vertices: smallest color absent among neighbors.
        let fr: &[V] = &frontier;
        let colors_ref = &colors;
        par::par_for(0, fr.len(), |i| {
            let v = fr[i];
            let deg = g.degree(v);
            let mut used = vec![false; deg + 1];
            g.for_each_edge(v, |u, _| {
                let c = colors_ref[u as usize].load(Ordering::Relaxed);
                if (c as usize) <= deg {
                    used[c as usize] = true;
                }
            });
            let c = used
                .iter()
                .position(|&b| !b)
                .expect("a free color always exists") as u32;
            colors_ref[v as usize].store(c, Ordering::Relaxed);
        });
        // Release dependencies of lower-ranked neighbors.
        let counts_ref = &counts;
        let next: Vec<Vec<V>> = par::par_map_grain(fr.len(), 4, |i| {
            let v = fr[i];
            let rv = rank(g, seed, v);
            let mut ready = Vec::new();
            g.for_each_edge(v, |u, _| {
                // ORDERING: AcqRel on the count — count-to-zero handoff:
                // Release publishes this thread's color write, the final
                // decrementer's Acquire orders it after all predecessors.
                if rank(g, seed, u) < rv
                    && colors_ref[u as usize].load(Ordering::Relaxed) == UNCOLORED
                    && counts_ref[u as usize].fetch_sub(1, Ordering::AcqRel) == 1
                {
                    ready.push(u);
                }
            });
            ready
        });
        frontier = next.into_iter().flatten().collect();
    }
    assert_eq!(colored, n, "coloring did not reach every vertex");
    colors.into_iter().map(|c| c.into_inner()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn proper_coloring_on_rmat() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 101);
        let c = coloring(&g, 1);
        seq::check_coloring(&g, &c).unwrap();
    }

    #[test]
    fn complete_graph_needs_exactly_n_colors() {
        let g = gen::complete(12);
        let c = coloring(&g, 2);
        seq::check_coloring(&g, &c).unwrap();
        let distinct: std::collections::HashSet<u32> = c.into_iter().collect();
        assert_eq!(distinct.len(), 12);
    }

    #[test]
    fn grid_uses_few_colors() {
        let g = gen::grid(25, 25);
        let c = coloring(&g, 3);
        seq::check_coloring(&g, &c).unwrap();
        let max = c.iter().max().unwrap();
        assert!(*max <= 4, "grid colored with {} colors", max + 1);
    }

    #[test]
    fn star_uses_two_colors() {
        let g = gen::star(64);
        let c = coloring(&g, 4);
        seq::check_coloring(&g, &c).unwrap();
        assert!(c.iter().max().unwrap() <= &1);
    }

    #[test]
    fn compressed_graph_coloring() {
        let csr = gen::rmat(8, 12, gen::RmatParams::web(), 103);
        let g = CompressedCsr::from_csr(&csr, 64);
        let c = coloring(&g, 5);
        seq::check_coloring(&csr, &c).unwrap();
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 105);
        let before = Meter::global().snapshot();
        let _ = coloring(&g, 6);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
