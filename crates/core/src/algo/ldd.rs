//! Low-diameter decomposition (§4.3.2) — Miller-Peng-Xu random shifts \[70\].
//!
//! Each vertex draws a shift `δ_v ~ Exp(β)`; vertex `v` becomes a cluster
//! center at round `⌊δ_v⌋` if still unclaimed, and clusters grow by parallel
//! BFS (ties broken by arrival). Produces an `(O(β), O(log n / β))`
//! decomposition in `O(m)` expected work and `O(log² n)` depth whp.

use crate::edge_map::{edge_map, EdgeMapFn, EdgeMapOpts};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, NONE_V, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// Result of a low-diameter decomposition.
pub struct LddResult {
    /// Cluster id of each vertex = the id of its cluster center.
    pub cluster: Vec<V>,
    /// BFS parent within the cluster (`parent[c] == c` for centers).
    pub parent: Vec<V>,
    /// Number of BFS rounds performed (≈ max cluster radius).
    pub rounds: usize,
}

struct LddFn<'a> {
    cluster: &'a [AtomicU64],
    parent: &'a [AtomicU64],
}

const UNCLAIMED: u64 = u64::MAX;

impl EdgeMapFn for LddFn<'_> {
    fn update(&self, s: V, d: V, _w: u32) -> bool {
        if self.cluster[d as usize].load(Ordering::Relaxed) == UNCLAIMED {
            let c = self.cluster[s as usize].load(Ordering::Relaxed);
            self.cluster[d as usize].store(c, Ordering::Relaxed);
            self.parent[d as usize].store(s as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, s: V, d: V, _w: u32) -> bool {
        let c = self.cluster[s as usize].load(Ordering::Relaxed);
        // ORDERING: AcqRel success / Acquire failure — cluster-claim CAS:
        // Release publishes the claim, Acquire orders losers after it.
        if self.cluster[d as usize]
            .compare_exchange(UNCLAIMED, c, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.parent[d as usize].store(s as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn cond(&self, d: V) -> bool {
        self.cluster[d as usize].load(Ordering::Relaxed) == UNCLAIMED
    }
}

/// Decompose `g` with parameter `beta` (the paper uses `β = 0.2` for the
/// connectivity family, §5.3).
pub fn ldd<G: Graph>(g: &G, beta: f64, seed: u64) -> LddResult {
    assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
    let n = g.num_vertices();
    let cluster = crate::algo::common::atomic_vec(n, UNCLAIMED);
    let parent = crate::algo::common::atomic_vec(n, UNCLAIMED);

    // Shift for every vertex; start round = floor(shift).
    let start: Vec<u32> = par::par_map(n, |v| {
        let mut rng = par::SplitMix64::new(par::hash64(seed ^ v as u64));
        rng.next_exp(beta) as u32
    });
    let max_start = par::reduce_max(0, n, 0u32, |v| start[v]) as usize;
    // Bucket vertices by start round (sequential fill; n small relative to m).
    let mut by_round: Vec<Vec<V>> = vec![Vec::new(); max_start + 1];
    for v in 0..n {
        by_round[start[v] as usize].push(v as V);
    }

    let mut frontier = VertexSubset::empty(n);
    let mut rounds = 0usize;
    let mut round = 0usize;
    loop {
        // Activate this round's centers (if still unclaimed).
        if round <= max_start {
            let centers: Vec<V> = by_round[round]
                .iter()
                .copied()
                .filter(|&v| {
                    // ORDERING: AcqRel success / Acquire failure —
                    // center-claim CAS, same protocol as `update_atomic`.
                    cluster[v as usize]
                        .compare_exchange(UNCLAIMED, v as u64, Ordering::AcqRel, Ordering::Acquire)
                        .map(|_| {
                            parent[v as usize].store(v as u64, Ordering::Relaxed);
                        })
                        .is_ok()
                })
                .collect();
            if !centers.is_empty() {
                let mut prev = frontier.to_vec();
                prev.extend_from_slice(&centers);
                frontier = VertexSubset::from_sparse(n, prev);
            }
        }
        if frontier.is_empty() && round > max_start {
            break;
        }
        let f = LddFn {
            cluster: &cluster,
            parent: &parent,
        };
        frontier = edge_map(g, &mut frontier, &f, EdgeMapOpts::default());
        rounds += 1;
        round += 1;
    }

    LddResult {
        cluster: cluster.into_iter().map(|c| c.into_inner() as V).collect(),
        parent: parent
            .into_iter()
            .map(|p| {
                let p = p.into_inner();
                if p == UNCLAIMED {
                    NONE_V
                } else {
                    p as V
                }
            })
            .collect(),
        rounds,
    }
}

/// Count the directed edges whose endpoints lie in different clusters.
pub fn count_inter_cluster_edges<G: Graph>(g: &G, cluster: &[V]) -> u64 {
    par::reduce_add(0, g.num_vertices(), |vi| {
        let v = vi as V;
        let mut cnt = 0u64;
        g.for_each_edge(v, |u, _| {
            if cluster[v as usize] != cluster[u as usize] {
                cnt += 1;
            }
        });
        cnt
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_graph::gen;

    fn check_clusters_valid<G: Graph>(g: &G, r: &LddResult) {
        let n = g.num_vertices();
        for v in 0..n {
            let c = r.cluster[v];
            assert_ne!(c, NONE_V, "vertex {v} unclaimed");
            assert_eq!(r.cluster[c as usize], c, "center of {v} not self-clustered");
            // Parent chain stays within the cluster and reaches the center.
            let mut cur = v as V;
            let mut hops = 0;
            while cur != c {
                assert_eq!(r.cluster[cur as usize], c);
                cur = r.parent[cur as usize];
                hops += 1;
                assert!(hops <= n, "parent cycle at {v}");
            }
        }
    }

    #[test]
    fn covers_all_vertices_with_valid_trees() {
        let g = gen::rmat(10, 8, gen::RmatParams::default(), 31);
        let r = ldd(&g, 0.2, 42);
        check_clusters_valid(&g, &r);
    }

    #[test]
    fn high_beta_makes_small_clusters() {
        let g = gen::grid(40, 40);
        let fine = ldd(&g, 0.9, 7);
        let coarse = ldd(&g, 0.05, 7);
        let count = |r: &LddResult| {
            (0..g.num_vertices())
                .filter(|&v| r.cluster[v] as usize == v)
                .count()
        };
        assert!(
            count(&fine) > count(&coarse),
            "expected beta=0.9 to create more clusters than beta=0.05"
        );
        check_clusters_valid(&g, &fine);
        check_clusters_valid(&g, &coarse);
    }

    #[test]
    fn inter_cluster_edge_fraction_tracks_beta() {
        // E[cut edges] <= beta * m; allow generous slack for small graphs.
        let g = gen::rmat(11, 10, gen::RmatParams::default(), 33);
        let r = ldd(&g, 0.2, 9);
        let cut = count_inter_cluster_edges(&g, &r.cluster);
        let frac = cut as f64 / g.num_edges() as f64;
        assert!(frac < 0.5, "cut fraction {frac} too large for beta=0.2");
    }

    #[test]
    fn disconnected_components_get_disjoint_clusters() {
        let g = gen::two_cliques(20);
        let r = ldd(&g, 0.2, 3);
        check_clusters_valid(&g, &r);
        for v in 0..20 {
            assert!(r.cluster[v] < 20);
            assert!(r.cluster[v + 20] >= 20);
        }
    }

    #[test]
    fn deterministic_given_seed_and_single_thread() {
        // Cluster assignment can vary with scheduling, but the set of centers
        // activated in round 0 is deterministic.
        let g = gen::path(100);
        let a = ldd(&g, 0.5, 11);
        let b = ldd(&g, 0.5, 11);
        let centers = |r: &LddResult| (0..100).filter(|&v| r.cluster[v] as usize == v).count();
        // Both runs must produce valid decompositions with similar granularity.
        check_clusters_valid(&g, &a);
        check_clusters_valid(&g, &b);
        let (ca, cb) = (centers(&a), centers(&b));
        assert!(ca > 0 && cb > 0);
    }
}
