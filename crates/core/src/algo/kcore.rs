//! k-core / coreness decomposition (§4.3.4) — Julienne peeling.
//!
//! Vertices are bucketed by induced degree; each round peels the minimum
//! bucket, decrements neighbors through the histogram primitive (with the
//! paper's *dense* fallback when the peeled neighborhood is large), and
//! re-buckets. Computes the coreness of every vertex and the number of
//! peeling rounds (the paper reports 130,728 rounds and `kmax = 10565` on
//! Hyperlink2012).

use crate::bucket::{Buckets, Order, Packing};
use sage_graph::{Graph, V};
use sage_nvram::meter;
use sage_parallel as par;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Result of the k-core decomposition.
pub struct KcoreResult {
    /// Coreness (largest k such that the vertex is in the k-core).
    pub coreness: Vec<u32>,
    /// Number of peeling rounds (bucket extractions).
    pub rounds: usize,
    /// Largest non-empty core (`kmax`).
    pub kmax: u32,
}

/// Peel the graph; see [`KcoreResult`].
pub fn kcore<G: Graph>(g: &G) -> KcoreResult {
    let n = g.num_vertices();
    let m = g.num_edges();
    let degrees: Vec<AtomicU64> = (0..n)
        .map(|v| AtomicU64::new(g.degree(v as V) as u64))
        .collect();
    let peeled: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut buckets = Buckets::new(n, Order::Increasing, Packing::SemiEager, |v| {
        Some(g.degree(v) as u64)
    });
    let mut coreness = vec![0u32; n];
    let mut k = 0u64;
    let mut rounds = 0usize;
    // One histogram for the whole peel: its dense scratch is allocated on
    // first use and reused across all rounds (per-round cost stays
    // proportional to the peeled neighborhood, not to n). Checked out of the
    // current QueryArena so back-to-back queries reuse the scratch too.
    let mut histogram = crate::arena::fetch_histogram(m);
    while let Some((bkt, ids)) = buckets.next_bucket() {
        rounds += 1;
        k = k.max(bkt);
        for &v in &ids {
            coreness[v as usize] = k as u32;
            peeled[v as usize].store(true, Ordering::Relaxed);
        }
        // Histogram of still-unpeeled neighbors of the peeled set (§4.3.4).
        let ids_ref: &[V] = &ids;
        let peeled_ref = &peeled;
        let total_keys = par::reduce_add(0, ids.len(), |i| g.degree(ids_ref[i]) as u64) as usize;
        let counts = histogram.count(ids.len(), total_keys, n, |i, emit| {
            g.for_each_edge(ids_ref[i], |u, _| {
                if !peeled_ref[u as usize].load(Ordering::Relaxed) {
                    emit(u);
                }
            });
        });
        meter::aux_read(histogram.last_work());
        // Decrement degrees (clamped at k) and re-bucket. The histogram keys
        // are distinct, so the degree writes are race-free.
        let counts_ref: &[(u32, u32)] = &counts;
        let updates: Vec<(V, u64)> = par::par_map(counts.len(), |i| {
            let (u, c) = counts_ref[i];
            let d = degrees[u as usize].load(Ordering::Relaxed);
            let nd = d.saturating_sub(c as u64).max(k);
            degrees[u as usize].store(nd, Ordering::Relaxed);
            (u, nd)
        });
        buckets.update_batch_distinct(&updates);
    }
    crate::arena::release_histogram(histogram);
    KcoreResult {
        coreness,
        rounds,
        kmax: k as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn matches_sequential_on_rmat() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 111);
        let r = kcore(&g);
        assert_eq!(r.coreness, seq::coreness(&g));
        assert_eq!(r.kmax, *r.coreness.iter().max().unwrap());
    }

    #[test]
    fn clique_with_tail() {
        let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.push((3, 4));
        edges.push((4, 5));
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(6, edges),
            sage_graph::BuildOptions::default(),
        );
        let r = kcore(&g);
        assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1]);
        assert_eq!(r.kmax, 3);
    }

    #[test]
    fn complete_graph_core() {
        let g = gen::complete(10);
        let r = kcore(&g);
        assert!(r.coreness.iter().all(|&c| c == 9));
    }

    #[test]
    fn star_has_core_one() {
        let g = gen::star(100);
        let r = kcore(&g);
        assert!(r.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn compressed_graph_kcore() {
        let csr = gen::rmat(8, 12, gen::RmatParams::web(), 113);
        let g = CompressedCsr::from_csr(&csr, 64);
        assert_eq!(kcore(&g).coreness, seq::coreness(&csr));
    }

    #[test]
    fn grid_is_two_core() {
        let g = gen::grid(10, 10);
        let r = kcore(&g);
        assert_eq!(r.kmax, 2);
        assert_eq!(r.coreness, seq::coreness(&g));
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 115);
        let before = Meter::global().snapshot();
        let _ = kcore(&g);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
