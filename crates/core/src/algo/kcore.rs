//! k-core / coreness decomposition (§4.3.4) — Julienne peeling.
//!
//! Vertices are bucketed by induced degree; each round peels the minimum
//! bucket, decrements neighbors through the histogram primitive (with the
//! paper's *dense* fallback when the peeled neighborhood is large), and
//! re-buckets. Computes the coreness of every vertex and the number of
//! peeling rounds (the paper reports 130,728 rounds and `kmax = 10565` on
//! Hyperlink2012).

use crate::bucket::{Buckets, Order, Packing};
use sage_graph::{Graph, V};
use sage_nvram::meter;
use sage_parallel as par;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Result of the k-core decomposition.
pub struct KcoreResult {
    /// Coreness (largest k such that the vertex is in the k-core).
    pub coreness: Vec<u32>,
    /// Number of peeling rounds (bucket extractions).
    pub rounds: usize,
    /// Largest non-empty core (`kmax`).
    pub kmax: u32,
}

/// Several restricted-reporting coreness requests answered by **one** shared
/// peel (possibly [truncated](kcore_bounded)) — the entry point the serving
/// layer's same-`k`-threshold batching uses.
pub struct KcoreMultiResult {
    /// One `(vertex, coreness)` report per request, in request order.
    pub reports: Vec<Vec<(V, u32)>>,
    /// Largest non-empty core found by the shared peel (clamped at the
    /// threshold for truncated peels; see [`kcore_bounded`]).
    pub kmax: u32,
    /// Peeling rounds the shared run performed.
    pub rounds: usize,
}

/// Peel the graph; see [`KcoreResult`].
pub fn kcore<G: Graph>(g: &G) -> KcoreResult {
    kcore_bounded(g, None)
}

/// Peel the graph, optionally stopping at a coreness threshold.
///
/// With `threshold = Some(t)` the peel halts as soon as the minimum bucket
/// reaches `t`: every vertex still unpeeled at that point has induced degree
/// ≥ `t` in the remaining subgraph, i.e. it is in the `t`-core, so its
/// (clamped) coreness is reported as `t` without peeling further. The result
/// equals the full decomposition with `coreness[v] → min(coreness[v], t)`
/// and `kmax → min(kmax, t)` — exact where it matters ("is `v` in the
/// `t`-core, and what is its coreness below `t`?") at a fraction of the
/// rounds, which is what a serving layer answering bounded-`k` queries
/// wants. `threshold = None` is the classic full peel.
pub fn kcore_bounded<G: Graph>(g: &G, threshold: Option<u32>) -> KcoreResult {
    let n = g.num_vertices();
    let m = g.num_edges();
    let degrees: Vec<AtomicU64> = (0..n)
        .map(|v| AtomicU64::new(g.degree(v as V) as u64))
        .collect();
    let peeled: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut buckets = Buckets::new(n, Order::Increasing, Packing::SemiEager, |v| {
        Some(g.degree(v) as u64)
    });
    let mut coreness = vec![0u32; n];
    let mut k = 0u64;
    let mut rounds = 0usize;
    let mut truncated = false;
    // One histogram for the whole peel: its dense scratch is allocated on
    // first use and reused across all rounds (per-round cost stays
    // proportional to the peeled neighborhood, not to n). Checked out of the
    // current QueryArena so back-to-back queries reuse the scratch too.
    let mut histogram = crate::arena::fetch_histogram(m);
    while let Some((bkt, ids)) = buckets.next_bucket() {
        if let Some(t) = threshold {
            if bkt >= t as u64 {
                // Everything still unpeeled (including this bucket) has
                // induced degree ≥ t: it is in the t-core. Stop peeling.
                truncated = true;
                break;
            }
        }
        rounds += 1;
        k = k.max(bkt);
        for &v in &ids {
            coreness[v as usize] = k as u32;
            peeled[v as usize].store(true, Ordering::Relaxed);
        }
        // Histogram of still-unpeeled neighbors of the peeled set (§4.3.4).
        let ids_ref: &[V] = &ids;
        let peeled_ref = &peeled;
        let total_keys = par::reduce_add(0, ids.len(), |i| g.degree(ids_ref[i]) as u64) as usize;
        let counts = histogram.count(ids.len(), total_keys, n, |i, emit| {
            g.for_each_edge(ids_ref[i], |u, _| {
                if !peeled_ref[u as usize].load(Ordering::Relaxed) {
                    emit(u);
                }
            });
        });
        meter::aux_read(histogram.last_work());
        // Decrement degrees (clamped at k) and re-bucket. The histogram keys
        // are distinct, so the degree writes are race-free.
        let counts_ref: &[(u32, u32)] = &counts;
        let updates: Vec<(V, u64)> = par::par_map(counts.len(), |i| {
            let (u, c) = counts_ref[i];
            let d = degrees[u as usize].load(Ordering::Relaxed);
            let nd = d.saturating_sub(c as u64).max(k);
            degrees[u as usize].store(nd, Ordering::Relaxed);
            (u, nd)
        });
        buckets.update_batch_distinct(&updates);
    }
    crate::arena::release_histogram(histogram);
    if truncated {
        let t = threshold.expect("truncation implies a threshold");
        for (v, c) in coreness.iter_mut().enumerate() {
            if !peeled[v].load(Ordering::Relaxed) {
                *c = t;
            }
        }
        // The t-core is non-empty (we stopped because vertices remained at
        // bucket ≥ t), so min(kmax, t) = t.
        k = t as u64;
    }
    KcoreResult {
        coreness,
        rounds,
        kmax: k as u32,
    }
}

/// Evaluate several restricted-reporting coreness requests over **one**
/// shared (possibly [truncated](kcore_bounded)) peel: the decomposition runs
/// once per threshold and every request's report is read off the same
/// coreness array — so `k` same-threshold queries cost one peel instead of
/// `k`, and each report is bitwise-identical to a standalone
/// [`kcore_bounded`] + lookup.
pub fn kcore_multi<G: Graph>(
    g: &G,
    threshold: Option<u32>,
    requests: &[Vec<V>],
) -> KcoreMultiResult {
    let kc = kcore_bounded(g, threshold);
    let reports = requests
        .iter()
        .map(|req| {
            req.iter()
                .map(|&v| (v, kc.coreness[v as usize]))
                .collect::<Vec<_>>()
        })
        .collect();
    KcoreMultiResult {
        reports,
        kmax: kc.kmax,
        rounds: kc.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn matches_sequential_on_rmat() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 111);
        let r = kcore(&g);
        assert_eq!(r.coreness, seq::coreness(&g));
        assert_eq!(r.kmax, *r.coreness.iter().max().unwrap());
    }

    #[test]
    fn clique_with_tail() {
        let mut edges = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        edges.push((3, 4));
        edges.push((4, 5));
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(6, edges),
            sage_graph::BuildOptions::default(),
        );
        let r = kcore(&g);
        assert_eq!(r.coreness, vec![3, 3, 3, 3, 1, 1]);
        assert_eq!(r.kmax, 3);
    }

    #[test]
    fn complete_graph_core() {
        let g = gen::complete(10);
        let r = kcore(&g);
        assert!(r.coreness.iter().all(|&c| c == 9));
    }

    #[test]
    fn star_has_core_one() {
        let g = gen::star(100);
        let r = kcore(&g);
        assert!(r.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn compressed_graph_kcore() {
        let csr = gen::rmat(8, 12, gen::RmatParams::web(), 113);
        let g = CompressedCsr::from_csr(&csr, 64);
        assert_eq!(kcore(&g).coreness, seq::coreness(&csr));
    }

    #[test]
    fn grid_is_two_core() {
        let g = gen::grid(10, 10);
        let r = kcore(&g);
        assert_eq!(r.kmax, 2);
        assert_eq!(r.coreness, seq::coreness(&g));
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 115);
        let before = Meter::global().snapshot();
        let _ = kcore(&g);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }

    /// The truncated peel equals the full decomposition clamped at the
    /// threshold — for every threshold, including 0 and past-kmax ones —
    /// and never does more rounds than the full peel.
    #[test]
    fn bounded_peel_is_the_clamped_decomposition() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 117);
        let full = kcore(&g);
        for t in [0u32, 1, 2, full.kmax, full.kmax + 3] {
            let b = kcore_bounded(&g, Some(t));
            assert_eq!(b.kmax, full.kmax.min(t), "threshold {t}");
            assert!(b.rounds <= full.rounds, "threshold {t}");
            let expect: Vec<u32> = full.coreness.iter().map(|&c| c.min(t)).collect();
            assert_eq!(b.coreness, expect, "threshold {t}");
        }
        // A genuinely truncating threshold saves rounds on this graph.
        assert!(kcore_bounded(&g, Some(1)).rounds < full.rounds);
    }

    #[test]
    fn multi_reports_match_standalone_lookups() {
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 119);
        let requests = vec![vec![0, 3, 3], vec![], vec![9]];
        for t in [None, Some(2)] {
            let multi = kcore_multi(&g, t, &requests);
            let solo = kcore_bounded(&g, t);
            assert_eq!(multi.kmax, solo.kmax);
            assert_eq!(multi.rounds, solo.rounds);
            for (req, report) in requests.iter().zip(&multi.reports) {
                let expect: Vec<(V, u32)> = req
                    .iter()
                    .map(|&v| (v, solo.coreness[v as usize]))
                    .collect();
                assert_eq!(report, &expect);
            }
        }
    }
}
