//! Maximal matching (§4.3.3, App C.3) using the graphFilter.
//!
//! Random-priority matching: each round, every unmatched vertex nominates its
//! minimum-priority active edge; an edge whose two endpoints nominate each
//! other joins the matching, and the filter packs away every edge incident to
//! a matched vertex — the batched "deletion" that GBBS performs by mutating
//! the graph and Sage performs in DRAM bits (§4.2). The globally minimum
//! active edge always matches, and by the analysis of [17, 42] O(log m)
//! rounds suffice whp.

use crate::filter::GraphFilter;
use sage_graph::{Graph, NONE_V, V};
use sage_parallel as par;

#[inline]
fn edge_priority(seed: u64, u: V, v: V) -> u64 {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    par::hash64_pair(seed ^ a as u64, b as u64)
}

/// Compute a maximal matching; `mate[v]` is `v`'s partner or `NONE_V`.
pub fn maximal_matching<G: Graph>(g: &G, seed: u64) -> Vec<V> {
    let n = g.num_vertices();
    let mut mate = vec![NONE_V; n];
    let mut filter = GraphFilter::new(g, true);
    let mut round = 0usize;
    while filter.active_edges() > 0 {
        round += 1;
        assert!(round <= 64 + n, "matching failed to converge");
        // Nominations: min-priority active edge per vertex.
        let nominee: Vec<V> = par::par_map(n, |vi| {
            let v = vi as V;
            let mut best: Option<(u64, V)> = None;
            filter.for_each_active(v, |u, _| {
                let key = (edge_priority(seed, v, u), u);
                if best.map_or(true, |b| key < b) {
                    best = Some(key);
                }
            });
            best.map_or(NONE_V, |(_, u)| u)
        });
        // Mutual nominations match.
        let matched: Vec<V> = par::pack_index(n, |vi| {
            let u = nominee[vi];
            u != NONE_V && nominee[u as usize] == vi as V
        })
        .into_iter()
        .map(|i| i as V)
        .collect();
        debug_assert!(!matched.is_empty(), "min-priority edge must match");
        for &v in &matched {
            mate[v as usize] = nominee[v as usize];
        }
        // Pack away all edges incident to matched vertices.
        let mate_ref: &[V] = &mate;
        filter.filter_edges(|a, b, _| {
            mate_ref[a as usize] == NONE_V && mate_ref[b as usize] == NONE_V
        });
    }
    mate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    #[test]
    fn matching_on_rmat_is_valid_and_maximal() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 91);
        let mate = maximal_matching(&g, 1);
        seq::check_maximal_matching(&g, &mate).unwrap();
    }

    #[test]
    fn matching_on_path_alternates() {
        let g = gen::path(50);
        let mate = maximal_matching(&g, 2);
        seq::check_maximal_matching(&g, &mate).unwrap();
        let matched = mate.iter().filter(|&&m| m != NONE_V).count();
        assert!(matched >= 34, "path matching too small: {matched}");
    }

    #[test]
    fn matching_on_complete_graph_pairs_everyone() {
        let g = gen::complete(20);
        let mate = maximal_matching(&g, 3);
        seq::check_maximal_matching(&g, &mate).unwrap();
        assert_eq!(mate.iter().filter(|&&m| m != NONE_V).count(), 20);
    }

    #[test]
    fn matching_on_star_has_one_edge() {
        let g = gen::star(40);
        let mate = maximal_matching(&g, 4);
        seq::check_maximal_matching(&g, &mate).unwrap();
        assert_eq!(mate.iter().filter(|&&m| m != NONE_V).count(), 2);
    }

    #[test]
    fn matching_on_compressed() {
        let csr = gen::rmat(8, 10, gen::RmatParams::web(), 93);
        let g = CompressedCsr::from_csr(&csr, 64);
        let mate = maximal_matching(&g, 5);
        seq::check_maximal_matching(&csr, &mate).unwrap();
    }

    #[test]
    fn empty_graph_matches_nothing() {
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(5, vec![]),
            sage_graph::BuildOptions::default(),
        );
        assert!(maximal_matching(&g, 6).iter().all(|&m| m == NONE_V));
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 95);
        let before = Meter::global().snapshot();
        let _ = maximal_matching(&g, 7);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
