//! Breadth-first search (§4.1.3, Figure 4).
//!
//! `O(m)` PSAM work, `O(dG log n)` depth, `O(n)` words of small memory
//! (Theorem 4.2). The code mirrors the paper's Figure 4 listing: a parent
//! array, a frontier, and one `edgeMapChunked` per round.

use crate::edge_map::{edge_map, ClaimFn, EdgeMapOpts, UNVISITED};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, NONE_V, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// BFS tree from `src`: `parents[v]` is the BFS parent, `parents[src] = src`,
/// and `NONE_V` marks unreachable vertices.
pub fn bfs<G: Graph>(g: &G, src: V) -> Vec<V> {
    bfs_with_opts(g, src, EdgeMapOpts::default())
}

/// [`bfs`] with explicit traversal options (used by the Table 5 experiment to
/// compare `edgeMapSparse` / `edgeMapBlocked` / `edgeMapChunked`).
pub fn bfs_with_opts<G: Graph>(g: &G, src: V, opts: EdgeMapOpts) -> Vec<V> {
    let n = g.num_vertices();
    let parents = crate::algo::common::atomic_vec(n, UNVISITED);
    parents[src as usize].store(src as u64, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(n, src);
    while !frontier.is_empty() {
        let f = ClaimFn { parents: &parents };
        frontier = edge_map(g, &mut frontier, &f, opts);
    }
    parents
        .into_iter()
        .map(|p| {
            let p = p.into_inner();
            if p == UNVISITED {
                NONE_V
            } else {
                p as V
            }
        })
        .collect()
}

/// BFS levels from `src` (`u64::MAX` = unreachable), plus the round count.
/// Convenience wrapper used by verification and by betweenness.
pub fn bfs_levels<G: Graph>(g: &G, src: V) -> (Vec<u64>, usize) {
    let n = g.num_vertices();
    let parents = crate::algo::common::atomic_vec(n, UNVISITED);
    parents[src as usize].store(src as u64, Ordering::Relaxed);
    let levels: Vec<AtomicU64> = crate::algo::common::atomic_vec(n, u64::MAX);
    levels[src as usize].store(0, Ordering::Relaxed);
    let mut frontier = VertexSubset::single(n, src);
    let mut round = 0u64;
    while !frontier.is_empty() {
        round += 1;
        let f = ClaimFn { parents: &parents };
        let next = edge_map(g, &mut frontier, &f, EdgeMapOpts::default());
        let r = round;
        next.for_each(|v| levels[v as usize].store(r, Ordering::Relaxed));
        frontier = next;
    }
    (crate::algo::common::unwrap_atomic(levels), round as usize)
}

/// Validate a BFS tree: parents form shortest paths. Used in tests and the
/// integration suite.
pub fn validate_bfs_tree<G: Graph>(g: &G, src: V, parents: &[V]) -> Result<(), String> {
    let n = g.num_vertices();
    // Derive levels by chasing parents (with cycle guard).
    let mut level = vec![u64::MAX; n];
    level[src as usize] = 0;
    for v0 in 0..n as V {
        if parents[v0 as usize] == NONE_V || level[v0 as usize] != u64::MAX {
            continue;
        }
        let mut chain = vec![v0];
        let mut v = v0;
        while level[v as usize] == u64::MAX {
            v = parents[v as usize];
            chain.push(v);
            if chain.len() > n + 1 {
                return Err(format!("parent cycle reached from {v0}"));
            }
        }
        let mut l = level[v as usize];
        for &u in chain.iter().rev().skip(1) {
            l += 1;
            level[u as usize] = l;
        }
    }
    // Tree edges must exist; levels must be BFS-consistent on every edge.
    let errors = par::reduce_add(0, n, |vi| {
        let v = vi as V;
        if parents[vi] == NONE_V || v == src {
            return 0;
        }
        let p = parents[vi];
        let mut is_edge = false;
        g.for_each_edge_while(v, |u, _| {
            if u == p {
                is_edge = true;
                return false;
            }
            true
        });
        if !is_edge || level[vi] != level[p as usize] + 1 {
            return 1;
        }
        0
    });
    if errors > 0 {
        return Err(format!("{errors} invalid parent pointers"));
    }
    // No edge may skip a level.
    let skips = par::reduce_add(0, n, |vi| {
        let v = vi as V;
        if level[vi] == u64::MAX {
            return 0;
        }
        let mut bad = 0u64;
        g.for_each_edge(v, |u, _| {
            let lu = level[u as usize];
            if lu == u64::MAX || lu + 1 < level[vi] {
                bad += 1;
            }
        });
        bad
    });
    if skips > 0 {
        return Err(format!("{skips} edges violate BFS level consistency"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_map::{SparseImpl, Strategy};
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    fn levels_from_parents<G: Graph>(g: &G, src: V, parents: &[V]) -> Vec<u64> {
        let n = g.num_vertices();
        let mut level = vec![u64::MAX; n];
        level[src as usize] = 0;
        // Relax repeatedly (test helper; fine for small graphs).
        for _ in 0..n {
            let mut changed = false;
            for v in 0..n {
                let p = parents[v];
                if p != NONE_V && v as V != src && level[p as usize] != u64::MAX {
                    let want = level[p as usize] + 1;
                    if level[v] != want {
                        level[v] = want;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        level
    }

    #[test]
    fn bfs_matches_sequential_on_rmat() {
        let g = gen::rmat(10, 8, gen::RmatParams::default(), 7);
        let want = seq::bfs_levels(&g, 0);
        let parents = bfs(&g, 0);
        validate_bfs_tree(&g, 0, &parents).unwrap();
        assert_eq!(levels_from_parents(&g, 0, &parents), want);
    }

    #[test]
    fn bfs_levels_match_sequential() {
        let g = gen::grid(25, 37);
        let (levels, rounds) = bfs_levels(&g, 0);
        assert_eq!(levels, seq::bfs_levels(&g, 0));
        // Eccentricity of the corner is (25-1)+(37-1); plus one empty round.
        assert_eq!(rounds as u64, 24 + 36 + 1);
    }

    #[test]
    fn bfs_on_compressed_graph() {
        let csr = gen::rmat(9, 10, gen::RmatParams::web(), 3);
        let g = CompressedCsr::from_csr(&csr, 64);
        let parents = bfs(&g, 5);
        validate_bfs_tree(&g, 5, &parents).unwrap();
        assert_eq!(
            levels_from_parents(&g, 5, &parents),
            seq::bfs_levels(&csr, 5)
        );
    }

    #[test]
    fn disconnected_vertices_unreachable() {
        let g = gen::two_cliques(5);
        let parents = bfs(&g, 0);
        assert!(parents[5..].iter().all(|&p| p == NONE_V));
        assert!(parents[..5].iter().all(|&p| p != NONE_V));
    }

    #[test]
    fn all_sparse_impls_give_valid_trees() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 9);
        for si in [SparseImpl::Chunked, SparseImpl::Blocked, SparseImpl::Sparse] {
            let parents = bfs_with_opts(
                &g,
                0,
                EdgeMapOpts {
                    strategy: Strategy::ForceSparse,
                    sparse_impl: si,
                    ..Default::default()
                },
            );
            validate_bfs_tree(&g, 0, &parents).unwrap();
        }
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 1);
        let before = Meter::global().snapshot();
        let _ = bfs(&g, 0);
        let d = Meter::global().snapshot().since(&before);
        assert_eq!(d.graph_write, 0, "Sage BFS must never write the graph");
        assert!(d.graph_read > 0);
    }
}
