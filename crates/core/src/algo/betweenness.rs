//! Single-source betweenness centrality (Brandes contributions), §4.3.1.
//!
//! Forward sparse/dense BFS accumulates path counts σ with the
//! fetch-and-add-double pattern (§4.3.4); the backward pass walks the BFS
//! levels in reverse, *pulling* each vertex's dependency from its successors
//! so no atomics are needed. `O(m)` PSAM work, `O(dG log n)` depth, `O(n)`
//! words of small memory.

use crate::algo::common::{atomic_add_f64, atomic_vec};
use crate::edge_map::{edge_map, EdgeMapFn, EdgeMapOpts};
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

struct SigmaFn<'a> {
    sigma: &'a [AtomicU64], // f64 bits
    level: &'a [AtomicU64], // u64::MAX = unvisited
    round: u64,
}

impl EdgeMapFn for SigmaFn<'_> {
    fn update(&self, s: V, d: V, _w: u32) -> bool {
        // Dense: single-threaded per destination.
        let ls = self.level[s as usize].load(Ordering::Relaxed);
        if ls != self.round - 1 {
            return false;
        }
        let add = f64::from_bits(self.sigma[s as usize].load(Ordering::Relaxed));
        let cur = f64::from_bits(self.sigma[d as usize].load(Ordering::Relaxed));
        self.sigma[d as usize].store((cur + add).to_bits(), Ordering::Relaxed);
        let first = self.level[d as usize].load(Ordering::Relaxed) == u64::MAX;
        if first {
            self.level[d as usize].store(self.round, Ordering::Relaxed);
        }
        first
    }

    fn update_atomic(&self, s: V, d: V, _w: u32) -> bool {
        let ls = self.level[s as usize].load(Ordering::Relaxed);
        if ls != self.round - 1 {
            return false;
        }
        let add = f64::from_bits(self.sigma[s as usize].load(Ordering::Relaxed));
        atomic_add_f64(&self.sigma[d as usize], add);
        // ORDERING: AcqRel success / Acquire failure — level-claim CAS:
        // Release publishes the sigma contribution, Acquire orders losers.
        self.level[d as usize]
            .compare_exchange(u64::MAX, self.round, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn cond(&self, d: V) -> bool {
        let l = self.level[d as usize].load(Ordering::Relaxed);
        l == u64::MAX || l == self.round
    }
}

/// Brandes dependency scores for all shortest paths from `src`.
pub fn betweenness<G: Graph>(g: &G, src: V) -> Vec<f64> {
    let n = g.num_vertices();
    let sigma = atomic_vec(n, 0f64.to_bits());
    sigma[src as usize].store(1f64.to_bits(), Ordering::Relaxed);
    let level = atomic_vec(n, u64::MAX);
    level[src as usize].store(0, Ordering::Relaxed);

    // Forward phase: record each level's frontier.
    let mut frontiers: Vec<Vec<V>> = vec![vec![src]];
    let mut frontier = VertexSubset::single(n, src);
    let mut round = 0u64;
    loop {
        round += 1;
        let f = SigmaFn {
            sigma: &sigma,
            level: &level,
            round,
        };
        let mut next = edge_map(g, &mut frontier, &f, EdgeMapOpts::default());
        if next.is_empty() {
            break;
        }
        frontiers.push(next.as_sparse().to_vec());
        frontier = next;
    }

    // Backward phase: pull dependencies level by level.
    let levels: Vec<u64> = level.iter().map(|l| l.load(Ordering::Relaxed)).collect();
    let sigmas: Vec<f64> = sigma
        .iter()
        .map(|s| f64::from_bits(s.load(Ordering::Relaxed)))
        .collect();
    let mut delta = vec![0f64; n];
    for l in (0..frontiers.len().saturating_sub(1)).rev() {
        let frontier = &frontiers[l];
        let dp = par::SendPtr(delta.as_mut_ptr());
        let levels_ref = &levels;
        let sigmas_ref = &sigmas;
        // Each vertex of level l is written by exactly one task; reads only
        // touch level l+1, whose values are already final.
        par::par_for(0, frontier.len(), |i| {
            let u = frontier[i];
            let mut acc = 0f64;
            g.for_each_edge(u, |v, _| {
                if levels_ref[v as usize] == l as u64 + 1 {
                    // SAFETY: level-(l+1) entries are read-only in this pass.
                    let dv = unsafe { *dp.add(v as usize) };
                    acc += sigmas_ref[u as usize] / sigmas_ref[v as usize] * (1.0 + dv);
                }
            });
            // SAFETY: distinct u per iteration; u is at level l.
            unsafe { *dp.add(u as usize) = acc };
        });
    }
    delta[src as usize] = 0.0;
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use sage_graph::{gen, CompressedCsr};

    fn close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!(
                (a[i] - b[i]).abs() < 1e-6 * (1.0 + a[i].abs()),
                "index {i}: {} vs {}",
                a[i],
                b[i]
            );
        }
    }

    #[test]
    fn matches_brandes_on_rmat() {
        let g = gen::rmat(9, 8, gen::RmatParams::default(), 21);
        close(&betweenness(&g, 0), &seq::brandes(&g, 0));
    }

    #[test]
    fn matches_brandes_on_grid() {
        let g = gen::grid(12, 17);
        close(&betweenness(&g, 5), &seq::brandes(&g, 5));
    }

    #[test]
    fn matches_brandes_on_compressed() {
        let csr = gen::rmat(8, 10, gen::RmatParams::web(), 23);
        let g = CompressedCsr::from_csr(&csr, 64);
        close(&betweenness(&g, 2), &seq::brandes(&csr, 2));
    }

    #[test]
    fn path_dependencies() {
        let g = gen::path(6);
        let d = betweenness(&g, 0);
        assert_eq!(d[1], 4.0);
        assert_eq!(d[5], 0.0);
    }

    #[test]
    fn zero_nvram_writes() {
        use sage_nvram::Meter;
        let g = gen::rmat(8, 8, gen::RmatParams::default(), 25);
        let before = Meter::global().snapshot();
        let _ = betweenness(&g, 0);
        assert_eq!(Meter::global().snapshot().since(&before).graph_write, 0);
    }
}
