//! Julienne-style bucketing (Appendix B) with semi-eager packing.
//!
//! A bucketing structure maintains a dynamic map from vertices to integer
//! buckets and repeatedly extracts the lowest (or highest) non-empty bucket.
//! It underpins weighted BFS, k-core, approximate densest subgraph, and
//! approximate set cover.
//!
//! Julienne's original strategy is *lazy*: moved vertices are simply
//! re-inserted and stale copies are skipped at extraction, which can hold up
//! to `O(#updates)` words — too much for the PSAM. The paper's *semi-eager*
//! variant (Appendix B) tracks live/dead counts per bucket and physically
//! packs a bucket when its dead entries outnumber the live ones, bounding the
//! structure at `O(n)` words. Both strategies are implemented and tested for
//! equivalence; semi-eager is the default.
//!
//! As in Julienne's practical variant, a constant number of *open* buckets is
//! kept (the next [`OPEN_BUCKETS`] priorities) plus one overflow bucket that
//! is re-split when reached.

use sage_graph::V;
use sage_nvram::meter;
use sage_parallel as par;

/// Number of open buckets kept ahead of the current priority.
pub const OPEN_BUCKETS: usize = 128;

/// Bucket id meaning "never schedule this vertex again".
pub const CLOSED: u64 = u64::MAX;

/// Extraction order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Extract the smallest bucket first (wBFS, k-core).
    Increasing,
    /// Extract the largest bucket first (set cover).
    Decreasing,
}

/// Packing strategy; see module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Packing {
    /// Julienne's lazy deletion.
    Lazy,
    /// The paper's semi-eager packing (Appendix B).
    SemiEager,
}

/// A dynamic bucketing structure over vertices `0..n`.
pub struct Buckets {
    order: Order,
    packing: Packing,
    /// Current bucket of each vertex (internal key space), CLOSED if done.
    ids: Vec<u64>,
    /// Open buckets: `open[i]` holds vertices with key `base + i`.
    open: Vec<Vec<V>>,
    /// Dead (stale) entry count per open bucket, for semi-eager packing.
    dead: Vec<usize>,
    /// Everything with key >= base + OPEN_BUCKETS.
    overflow: Vec<V>,
    /// Key of `open[0]`.
    base: u64,
}

impl Buckets {
    /// Build from an initial priority function; `None` leaves the vertex out.
    pub fn new(
        n: usize,
        order: Order,
        packing: Packing,
        key_of: impl Fn(V) -> Option<u64> + Sync,
    ) -> Self {
        let keys: Vec<u64> = par::par_map(n, |v| match key_of(v as V) {
            Some(k) => match order {
                Order::Increasing => k,
                Order::Decreasing => u64::MAX - 1 - k,
            },
            None => CLOSED,
        });
        meter::aux_write(n as u64);
        // `base` starts at 0: clamping in `update` must only reflect already
        // extracted priorities. Inserts beyond the open range fall into the
        // overflow bucket and are re-split on first extraction.
        let mut b = Self {
            order,
            packing,
            ids: keys,
            open: (0..OPEN_BUCKETS).map(|_| Vec::new()).collect(),
            dead: vec![0; OPEN_BUCKETS],
            overflow: Vec::new(),
            base: 0,
        };
        for v in 0..n as V {
            b.insert(v);
        }
        b
    }

    /// Vertices not yet closed.
    pub fn remaining(&self) -> usize {
        self.ids.iter().filter(|&&k| k != CLOSED).count()
    }

    #[inline]
    fn insert(&mut self, v: V) {
        let k = self.ids[v as usize];
        if k == CLOSED {
            return;
        }
        debug_assert!(k >= self.base, "key below the current bucket");
        let rel = (k - self.base) as usize;
        if rel < OPEN_BUCKETS {
            self.open[rel].push(v);
        } else {
            self.overflow.push(v);
        }
    }

    /// Move `v` to (internal-order) priority `new_key`; `CLOSED` removes it.
    /// Keys below the current bucket are clamped to it (monotone algorithms
    /// never decrease priorities in Increasing order).
    pub fn update(&mut self, v: V, new_key: u64) {
        let external = new_key;
        let k = match (self.order, external) {
            (_, CLOSED) => CLOSED,
            (Order::Increasing, k) => k,
            (Order::Decreasing, k) => u64::MAX - 1 - k,
        };
        let old = self.ids[v as usize];
        if old == k {
            return;
        }
        // Account the stale copy for semi-eager packing.
        if old != CLOSED && old >= self.base {
            let rel = (old - self.base) as usize;
            if rel < OPEN_BUCKETS {
                self.dead[rel] += 1;
                if self.packing == Packing::SemiEager {
                    self.maybe_pack(rel);
                }
            }
        }
        let clamped = if k == CLOSED {
            CLOSED
        } else {
            k.max(self.base)
        };
        self.ids[v as usize] = clamped;
        meter::aux_write(1);
        if clamped != CLOSED {
            self.insert(v);
        }
    }

    /// Batch form of [`Buckets::update`] (`update_buckets` in Julienne).
    pub fn update_batch(&mut self, moves: &[(V, u64)]) {
        for &(v, k) in moves {
            self.update(v, k);
        }
    }

    /// Semi-eager packing: physically drop stale entries once they outnumber
    /// the live ones (Appendix B).
    fn maybe_pack(&mut self, rel: usize) {
        let bucket = &mut self.open[rel];
        if self.dead[rel] <= bucket.len() / 2 || bucket.len() < 16 {
            return;
        }
        let key = self.base + rel as u64;
        let ids = &self.ids;
        bucket.retain(|&v| ids[v as usize] == key);
        meter::aux_write(bucket.len() as u64);
        self.dead[rel] = 0;
    }

    /// Extract the next non-empty bucket: `(external_key, live_vertices)`.
    /// Returns `None` when every vertex is closed.
    pub fn next_bucket(&mut self) -> Option<(u64, Vec<V>)> {
        loop {
            // Scan open buckets.
            for rel in 0..OPEN_BUCKETS {
                if self.open[rel].is_empty() {
                    continue;
                }
                let key = self.base + rel as u64;
                let raw = std::mem::take(&mut self.open[rel]);
                self.dead[rel] = 0;
                let ids = &self.ids;
                let mut live: Vec<V> = if raw.len() > 2048 {
                    let raw_ref: &[V] = &raw;
                    par::pack_index(raw.len(), |i| ids[raw_ref[i] as usize] == key)
                        .into_iter()
                        .map(|i| raw[i as usize])
                        .collect()
                } else {
                    raw.iter()
                        .copied()
                        .filter(|&v| ids[v as usize] == key)
                        .collect()
                };
                // A vertex moved away from this bucket and back again leaves
                // multiple *live* copies; deduplicate before extraction.
                if live.len() > 1 {
                    par::par_sort(&mut live);
                    live.dedup();
                }
                meter::aux_read(raw.len() as u64);
                if live.is_empty() {
                    continue;
                }
                // Close extracted vertices; callers re-insert survivors.
                for &v in &live {
                    self.ids[v as usize] = CLOSED;
                }
                let external = match self.order {
                    Order::Increasing => key,
                    Order::Decreasing => u64::MAX - 1 - key,
                };
                return Some((external, live));
            }
            // Open range exhausted: re-split the overflow bucket.
            if self.overflow.is_empty() {
                return None;
            }
            let over = std::mem::take(&mut self.overflow);
            let ids = &self.ids;
            let live: Vec<V> = over
                .into_iter()
                .filter(|&v| ids[v as usize] != CLOSED)
                .collect();
            if live.is_empty() {
                return None;
            }
            let new_base = live
                .iter()
                .map(|&v| self.ids[v as usize])
                .min()
                .expect("nonempty");
            self.base = new_base;
            self.dead.iter_mut().for_each(|d| *d = 0);
            for v in live {
                self.insert(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(b: &mut Buckets) -> Vec<(u64, Vec<V>)> {
        let mut out = Vec::new();
        while let Some((k, mut vs)) = b.next_bucket() {
            vs.sort_unstable();
            out.push((k, vs));
        }
        out
    }

    #[test]
    fn increasing_extraction_order() {
        let keys = [5u64, 1, 5, 3, 1];
        let mut b = Buckets::new(5, Order::Increasing, Packing::SemiEager, |v| {
            Some(keys[v as usize])
        });
        let got = drain(&mut b);
        assert_eq!(got, vec![(1, vec![1, 4]), (3, vec![3]), (5, vec![0, 2])]);
    }

    #[test]
    fn decreasing_extraction_order() {
        let keys = [5u64, 1, 9, 3];
        let mut b = Buckets::new(4, Order::Decreasing, Packing::SemiEager, |v| {
            Some(keys[v as usize])
        });
        let got = drain(&mut b);
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![9, 5, 3, 1]
        );
    }

    #[test]
    fn none_vertices_never_appear() {
        let mut b = Buckets::new(6, Order::Increasing, Packing::SemiEager, |v| {
            if v % 2 == 0 {
                Some(v as u64)
            } else {
                None
            }
        });
        let got = drain(&mut b);
        let all: Vec<V> = got.into_iter().flat_map(|(_, vs)| vs).collect();
        assert_eq!(all, vec![0, 2, 4]);
    }

    #[test]
    fn update_moves_vertices() {
        let mut b = Buckets::new(3, Order::Increasing, Packing::SemiEager, |_| Some(10));
        b.update(1, 2);
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (2, vec![1]));
        b.update(0, CLOSED);
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (10, vec![2]));
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn overflow_resplit() {
        // Keys far beyond the open range.
        let mut b = Buckets::new(4, Order::Increasing, Packing::SemiEager, |v| {
            Some(1000 + 500 * v as u64)
        });
        let got = drain(&mut b);
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1000, 1500, 2000, 2500]
        );
    }

    #[test]
    fn lazy_and_semieager_agree_under_churn() {
        let n = 500usize;
        let run = |packing: Packing| {
            let mut b = Buckets::new(n, Order::Increasing, packing, |v| Some(v as u64 % 50));
            let mut order = Vec::new();
            let mut round = 0u64;
            while let Some((k, vs)) = b.next_bucket() {
                order.push((k, {
                    let mut s = vs.clone();
                    s.sort_unstable();
                    s
                }));
                round += 1;
                // Push a fraction of the extracted vertices to later buckets.
                for &v in vs.iter().filter(|&&v| (v as u64 + round) % 3 == 0) {
                    if k < 200 {
                        b.update(v, k + 7);
                    }
                }
            }
            order
        };
        assert_eq!(run(Packing::Lazy), run(Packing::SemiEager));
    }

    #[test]
    fn kcore_style_monotone_updates() {
        // Simulate peeling: everyone starts at degree, moves down as
        // neighbors vanish, clamped at the current bucket.
        let degrees = [3u64, 3, 2, 1];
        let mut b = Buckets::new(4, Order::Increasing, Packing::SemiEager, |v| {
            Some(degrees[v as usize])
        });
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (1, vec![3]));
        // Vertex 2 loses a neighbor: key would drop to 1 but clamps to >= 1.
        b.update(2, 1);
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (1, vec![2]));
    }
}
