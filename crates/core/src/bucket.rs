//! Julienne-style bucketing (Appendix B) with semi-eager packing — the
//! **parallel bucket engine** behind wBFS, k-core, approximate densest
//! subgraph, and approximate set cover.
//!
//! A bucketing structure maintains a dynamic map from vertices to integer
//! buckets and repeatedly extracts the lowest (or highest) non-empty bucket.
//!
//! Julienne's original strategy is *lazy*: moved vertices are simply
//! re-inserted and stale copies are skipped at extraction, which can hold up
//! to `O(#updates)` words — too much for the PSAM. The paper's *semi-eager*
//! variant (Appendix B) tracks live/dead counts per bucket and physically
//! packs a bucket when its dead entries outnumber the live ones, bounding the
//! structure at `O(n)` words. Both strategies are implemented and tested for
//! equivalence; semi-eager is the default.
//!
//! As in Julienne's practical variant, a constant number of *open* buckets is
//! kept (the next [`OPEN_BUCKETS`] priorities) plus one overflow bucket that
//! is re-split when reached.
//!
//! # Parallel batch updates
//!
//! The paper's peeling algorithms run for up to hundreds of thousands of
//! rounds (130,728 on Hyperlink2012), so per-round cost must be proportional
//! to the *batch*, never to `n`, and the batch itself must be applied in
//! parallel to respect the work/depth bounds. [`Buckets::update_batch`]
//! (Julienne's `UpdateBuckets`) therefore:
//!
//! 1. deduplicates the batch in parallel (last move per vertex wins, matching
//!    the sequential loop's semantics);
//! 2. applies id writes and stale-copy accounting with a parallel loop
//!    (distinct vertices touch disjoint slots; per-bucket dead counters are
//!    atomic during the batch);
//! 3. groups surviving moves by destination bucket with a block-local
//!    counting sort — the histogram-style grouping of §4.3.4 — and appends
//!    each group with prefix-sum offsets plus disjoint parallel writes, the
//!    same scatter pattern as `edgeMapChunked`;
//! 4. triggers semi-eager packing once per batch from the updated dead/live
//!    statistics rather than per element, packing stale buckets in parallel.
//!
//! [`Buckets::new`] and the overflow re-split use the same scatter, so
//! construction is a parallel pack instead of an `n`-iteration insert loop.
//! Single-vertex [`Buckets::update`] remains for point updates; batches below
//! [`SEQ_BATCH`] take the sequential path (the parallel machinery only pays
//! off past a few cache lines of moves), and both paths are
//! extraction-equivalent by the model tests in `tests/bucket_model.rs`.

use sage_graph::V;
use sage_nvram::meter;
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of open buckets kept ahead of the current priority.
pub const OPEN_BUCKETS: usize = 128;

/// Bucket id meaning "never schedule this vertex again".
pub const CLOSED: u64 = u64::MAX;

/// Batch sizes below this take the sequential per-element update path.
pub const SEQ_BATCH: usize = 48;

/// Destination slots for the counting-sort scatter: one per open bucket plus
/// the overflow bucket.
const SLOTS: usize = OPEN_BUCKETS + 1;

/// Extraction order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Extract the smallest bucket first (wBFS, k-core).
    Increasing,
    /// Extract the largest bucket first (set cover).
    Decreasing,
}

/// Packing strategy; see module docs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Packing {
    /// Julienne's lazy deletion.
    Lazy,
    /// The paper's semi-eager packing (Appendix B).
    SemiEager,
}

/// A dynamic bucketing structure over vertices `0..n`.
pub struct Buckets {
    order: Order,
    packing: Packing,
    /// Current bucket of each vertex (internal key space), CLOSED if done.
    ids: Vec<u64>,
    /// Open buckets: `open[i]` holds vertices with key `base + i`.
    open: Vec<Vec<V>>,
    /// Dead (stale) entry count per open bucket, for semi-eager packing.
    dead: Vec<usize>,
    /// Everything with key >= base + OPEN_BUCKETS.
    overflow: Vec<V>,
    /// Key of `open[0]`.
    base: u64,
}

impl Buckets {
    /// Build from an initial priority function; `None` leaves the vertex out.
    /// Construction is a parallel pack + scatter, `O(n)` work, `O(log n)`
    /// depth — not an `n`-iteration sequential insert loop.
    pub fn new(
        n: usize,
        order: Order,
        packing: Packing,
        key_of: impl Fn(V) -> Option<u64> + Sync,
    ) -> Self {
        let keys: Vec<u64> = par::par_map(n, |v| match key_of(v as V) {
            Some(k) => match order {
                Order::Increasing => k,
                Order::Decreasing => u64::MAX - 1 - k,
            },
            None => CLOSED,
        });
        meter::aux_write(n as u64);
        // `base` starts at 0: clamping in `update` must only reflect already
        // extracted priorities. Inserts beyond the open range fall into the
        // overflow bucket and are re-split on first extraction.
        let mut b = Self {
            order,
            packing,
            ids: keys,
            open: (0..OPEN_BUCKETS).map(|_| Vec::new()).collect(),
            dead: vec![0; OPEN_BUCKETS],
            overflow: Vec::new(),
            base: 0,
        };
        let ids = &b.ids;
        let live: Vec<V> = par::pack_index(n, |v| ids[v] != CLOSED);
        b.scatter_live(&live);
        b
    }

    /// Vertices not yet closed.
    pub fn remaining(&self) -> usize {
        self.ids.iter().filter(|&&k| k != CLOSED).count()
    }

    #[inline]
    fn insert(&mut self, v: V) {
        let k = self.ids[v as usize];
        if k == CLOSED {
            return;
        }
        debug_assert!(k >= self.base, "key below the current bucket");
        let rel = (k - self.base) as usize;
        if rel < OPEN_BUCKETS {
            self.open[rel].push(v);
        } else {
            self.overflow.push(v);
        }
    }

    /// Append every vertex of `items` to the bucket its *current* id selects
    /// (`ids[v]` must be live and `>= base`): block-local destination counts,
    /// a prefix sum per destination, and disjoint parallel writes — the
    /// `edgeMapChunked` aggregation pattern applied to bucket insertion.
    fn scatter_live(&mut self, items: &[V]) {
        let k = items.len();
        if k == 0 {
            return;
        }
        // Bucket pushes are deliberately unmetered, exactly like the
        // sequential `insert` path: callers account the id writes, so both
        // paths report identical traffic for identical logical work.
        if k < SEQ_BATCH {
            for &v in items {
                self.insert(v);
            }
            return;
        }
        let (ids, open, overflow) = (&self.ids, &mut self.open, &mut self.overflow);
        let base = self.base;
        let slot_of = |v: V| -> usize {
            let key = ids[v as usize];
            debug_assert!(key != CLOSED && key >= base, "scatter of a dead vertex");
            (key - base).min(OPEN_BUCKETS as u64) as usize
        };
        // Pass 1: per-block destination counts.
        let block = k.div_ceil(8 * par::num_threads().max(1)).max(SEQ_BATCH);
        let nblocks = k.div_ceil(block);
        let mut offs: Vec<[u32; SLOTS]> = par::par_map_grain(nblocks, 1, |b| {
            let lo = b * block;
            let hi = ((b + 1) * block).min(k);
            let mut c = [0u32; SLOTS];
            for &v in &items[lo..hi] {
                c[slot_of(v)] += 1;
            }
            c
        });
        // Column-wise exclusive scan: offs[b][s] becomes the write offset of
        // block b within destination s; totals[s] the per-destination count.
        // (nblocks × SLOTS is O(P · 129) — constant-ish, scanned serially.)
        let mut totals = [0u32; SLOTS];
        for s in 0..SLOTS {
            let mut acc = 0u32;
            for off in offs.iter_mut() {
                let c = off[s];
                off[s] = acc;
                acc += c;
            }
            totals[s] = acc;
        }
        // Reserve destination tails and capture disjoint write cursors.
        let mut starts = [0usize; SLOTS];
        let mut ptrs: Vec<par::SendPtr<V>> = Vec::with_capacity(SLOTS);
        for s in 0..SLOTS {
            let bucket: &mut Vec<V> = if s < OPEN_BUCKETS {
                &mut open[s]
            } else {
                &mut *overflow
            };
            starts[s] = bucket.len();
            bucket.reserve(totals[s] as usize);
            // SAFETY: pointer to the first uninitialized slot of the reserved
            // tail; `add` below stays within the reservation.
            ptrs.push(par::SendPtr(unsafe { bucket.as_mut_ptr().add(starts[s]) }));
        }
        // Pass 2: disjoint scatter — block b owns [offs[b][s], offs[b+1][s])
        // of every destination s.
        {
            let offs_ref: &[[u32; SLOTS]] = &offs;
            let ptrs_ref: &[par::SendPtr<V>] = &ptrs;
            par::par_for_grain(0, nblocks, 1, |b| {
                let lo = b * block;
                let hi = ((b + 1) * block).min(k);
                let mut cur = offs_ref[b];
                for &v in &items[lo..hi] {
                    let s = slot_of(v);
                    // SAFETY: slot ranges are disjoint per (block, dest).
                    unsafe { ptrs_ref[s].add(cur[s] as usize).write(v) };
                    cur[s] += 1;
                }
            });
        }
        for s in 0..SLOTS {
            let bucket: &mut Vec<V> = if s < OPEN_BUCKETS {
                &mut open[s]
            } else {
                &mut *overflow
            };
            // SAFETY: exactly totals[s] tail slots were written above.
            unsafe { bucket.set_len(starts[s] + totals[s] as usize) };
        }
    }

    /// Move `v` to (internal-order) priority `new_key`; `CLOSED` removes it.
    /// Keys below the current bucket are clamped to it (monotone algorithms
    /// never decrease priorities in Increasing order).
    pub fn update(&mut self, v: V, new_key: u64) {
        let external = new_key;
        let k = match (self.order, external) {
            (_, CLOSED) => CLOSED,
            (Order::Increasing, k) => k,
            (Order::Decreasing, k) => u64::MAX - 1 - k,
        };
        let old = self.ids[v as usize];
        if old == k {
            return;
        }
        // Account the stale copy for semi-eager packing.
        if old != CLOSED && old >= self.base {
            let rel = (old - self.base) as usize;
            if rel < OPEN_BUCKETS {
                self.dead[rel] += 1;
                if self.packing == Packing::SemiEager {
                    self.maybe_pack(rel);
                }
            }
        }
        let clamped = if k == CLOSED {
            CLOSED
        } else {
            k.max(self.base)
        };
        self.ids[v as usize] = clamped;
        meter::aux_write(1);
        if clamped != CLOSED {
            self.insert(v);
        }
    }

    /// Batch form of [`Buckets::update`] (`UpdateBuckets` in Julienne),
    /// applied in parallel for batches of at least [`SEQ_BATCH`] moves; see
    /// the module docs for the four phases. Duplicate vertices are allowed —
    /// the last move wins, exactly as if the batch were applied in order.
    /// Callers that can guarantee distinct vertices should prefer
    /// [`Buckets::update_batch_distinct`], which skips the dedup sort.
    pub fn update_batch(&mut self, moves: &[(V, u64)]) {
        if moves.len() < SEQ_BATCH {
            for &(v, k) in moves {
                self.update(v, k);
            }
            return;
        }
        self.update_batch_parallel(moves, false);
    }

    /// [`Buckets::update_batch`] for batches the caller guarantees contain
    /// **at most one move per vertex** (histogram outputs, deduplicated
    /// frontiers). Skips the `O(k log k)` last-move-wins sort — the dominant
    /// phase-1 cost — which matters at hundreds of thousands of peeling
    /// rounds. Distinctness is debug-checked; a violating batch in release is
    /// still memory-safe (id slots are written atomically, so concurrent
    /// moves of one vertex race benignly: some single move wins, and dead
    /// counts can at worst overcount, which only packs earlier), but which
    /// move wins is unspecified — use [`Buckets::update_batch`] when
    /// duplicates are possible.
    pub fn update_batch_distinct(&mut self, moves: &[(V, u64)]) {
        debug_assert!(
            {
                let mut vs: Vec<V> = moves.iter().map(|&(v, _)| v).collect();
                vs.sort_unstable();
                vs.windows(2).all(|w| w[0] != w[1])
            },
            "update_batch_distinct requires at most one move per vertex"
        );
        if moves.len() < SEQ_BATCH {
            for &(v, k) in moves {
                self.update(v, k);
            }
            return;
        }
        self.update_batch_parallel(moves, true);
    }

    fn update_batch_parallel(&mut self, moves: &[(V, u64)], distinct: bool) {
        let base = self.base;
        let order = self.order;
        let normalize = |external: u64| match (order, external) {
            (_, CLOSED) => CLOSED,
            (Order::Increasing, k) => k,
            (Order::Decreasing, k) => u64::MAX - 1 - k,
        };
        // Phase 1: normalize keys; deduplicate unless the caller vouched for
        // distinctness. Sorting (vertex, position) pairs makes "last move
        // wins" a run-boundary pack.
        let survivors: Vec<(V, u64)> = if distinct {
            par::par_map(moves.len(), |i| (moves[i].0, normalize(moves[i].1)))
        } else {
            let mut tagged: Vec<(V, u32)> = par::par_map(moves.len(), |i| (moves[i].0, i as u32));
            par::par_sort(&mut tagged);
            let tagged_ref: &[(V, u32)] = &tagged;
            let last_of_run = par::pack_index(tagged.len(), |i| {
                i + 1 == tagged_ref.len() || tagged_ref[i].0 != tagged_ref[i + 1].0
            });
            par::par_map(last_of_run.len(), |j| {
                let (v, mi) = tagged_ref[last_of_run[j] as usize];
                (v, normalize(moves[mi as usize].1))
            })
        };
        // Phase 2: parallel apply. Survivors are one-per-vertex by contract,
        // but id slots are accessed atomically anyway so that a contract
        // violation on the distinct fast path degrades to a benign race (an
        // unspecified move wins) instead of undefined behavior. Relaxed is
        // enough: the scatter below only reads ids after the par_for joins.
        let dead_add: Vec<AtomicUsize> = (0..OPEN_BUCKETS).map(|_| AtomicUsize::new(0)).collect();
        let mut needs_insert: Vec<bool> = vec![false; survivors.len()];
        {
            let surv: &[(V, u64)] = &survivors;
            let dead_ref: &[AtomicUsize] = &dead_add;
            // SAFETY: AtomicU64 has the same size, alignment, and bit
            // validity as u64, and `&mut self` guarantees exclusive access
            // to `ids` for the lifetime of this view. The pointer must carry
            // write provenance (`as_mut_ptr`) for the stores below.
            let ids_atomic: &[AtomicU64] = unsafe {
                std::slice::from_raw_parts(
                    self.ids.as_mut_ptr() as *const AtomicU64,
                    self.ids.len(),
                )
            };
            let flag_ptr = par::SendPtr(needs_insert.as_mut_ptr());
            par::par_for(0, surv.len(), |j| {
                let (v, k) = surv[j];
                let slot = &ids_atomic[v as usize];
                let old = slot.load(Ordering::Relaxed);
                if old == k {
                    return; // no-op move, matching the sequential early-out
                }
                if old != CLOSED && old >= base {
                    let rel = (old - base) as usize;
                    if rel < OPEN_BUCKETS {
                        dead_ref[rel].fetch_add(1, Ordering::Relaxed);
                    }
                }
                let clamped = if k == CLOSED { CLOSED } else { k.max(base) };
                slot.store(clamped, Ordering::Relaxed);
                if clamped != CLOSED {
                    // SAFETY: flag j belongs to this iteration alone.
                    unsafe { flag_ptr.add(j).write(true) };
                }
            });
        }
        meter::aux_write(survivors.len() as u64);
        // Phase 3: group by destination bucket and append (scatter reads the
        // freshly written ids, which now hold each survivor's destination).
        let flags: &[bool] = &needs_insert;
        let surv: &[(V, u64)] = &survivors;
        let inserted = par::pack_index(survivors.len(), |j| flags[j]);
        let inserted_ref: &[u32] = &inserted;
        let to_insert: Vec<V> = par::par_map(inserted.len(), |i| surv[inserted_ref[i] as usize].0);
        self.scatter_live(&to_insert);
        // Phase 4: merge dead statistics and pack once per batch.
        for (dead, add) in self.dead.iter_mut().zip(&dead_add) {
            *dead += add.load(Ordering::Relaxed);
        }
        if self.packing == Packing::SemiEager {
            self.pack_stale_buckets();
        }
    }

    /// The Appendix B semi-eager threshold, shared by the per-element and
    /// batch packing paths: pack once dead entries outnumber the rest, but
    /// never bother below 16 entries.
    #[inline]
    fn needs_pack(dead: usize, len: usize) -> bool {
        dead > len / 2 && len >= 16
    }

    /// Semi-eager packing: physically drop stale entries once they outnumber
    /// the live ones (Appendix B). Per-element path for [`Buckets::update`].
    fn maybe_pack(&mut self, rel: usize) {
        let bucket = &mut self.open[rel];
        if !Self::needs_pack(self.dead[rel], bucket.len()) {
            return;
        }
        let key = self.base + rel as u64;
        let ids = &self.ids;
        bucket.retain(|&v| ids[v as usize] == key);
        meter::aux_write(bucket.len() as u64);
        self.dead[rel] = 0;
    }

    /// Batch-statistics packing: after a batch merge, pack every open bucket
    /// whose dead entries outnumber the live ones, in parallel across
    /// buckets. Same threshold as [`Buckets::maybe_pack`].
    fn pack_stale_buckets(&mut self) {
        let decisions: Vec<bool> = (0..OPEN_BUCKETS)
            .map(|rel| Self::needs_pack(self.dead[rel], self.open[rel].len()))
            .collect();
        if !decisions.iter().any(|&d| d) {
            return;
        }
        {
            let (ids, base) = (&self.ids, self.base);
            let dec: &[bool] = &decisions;
            par::par_for_slices(&mut self.open, |rel, bucket| {
                if dec[rel] {
                    let key = base + rel as u64;
                    bucket.retain(|&v| ids[v as usize] == key);
                }
            });
        }
        for (rel, &packed) in decisions.iter().enumerate() {
            if packed {
                meter::aux_write(self.open[rel].len() as u64);
                self.dead[rel] = 0;
            }
        }
    }

    /// Extract the next non-empty bucket: `(external_key, live_vertices)`.
    /// Returns `None` when every vertex is closed.
    pub fn next_bucket(&mut self) -> Option<(u64, Vec<V>)> {
        loop {
            // Scan open buckets.
            for rel in 0..OPEN_BUCKETS {
                if self.open[rel].is_empty() {
                    continue;
                }
                let key = self.base + rel as u64;
                let raw = std::mem::take(&mut self.open[rel]);
                self.dead[rel] = 0;
                let ids = &self.ids;
                let mut live: Vec<V> = if raw.len() > 2048 {
                    let raw_ref: &[V] = &raw;
                    par::pack_index(raw.len(), |i| ids[raw_ref[i] as usize] == key)
                        .into_iter()
                        .map(|i| raw[i as usize])
                        .collect()
                } else {
                    raw.iter()
                        .copied()
                        .filter(|&v| ids[v as usize] == key)
                        .collect()
                };
                // A vertex moved away from this bucket and back again leaves
                // multiple *live* copies; deduplicate before extraction.
                if live.len() > 1 {
                    par::par_sort(&mut live);
                    live.dedup();
                }
                meter::aux_read(raw.len() as u64);
                if live.is_empty() {
                    continue;
                }
                // Close extracted vertices; callers re-insert survivors.
                for &v in &live {
                    self.ids[v as usize] = CLOSED;
                }
                let external = match self.order {
                    Order::Increasing => key,
                    Order::Decreasing => u64::MAX - 1 - key,
                };
                return Some((external, live));
            }
            // Open range exhausted: re-split the overflow bucket in parallel
            // (filter the live entries, advance the base, scatter).
            if self.overflow.is_empty() {
                return None;
            }
            let over = std::mem::take(&mut self.overflow);
            meter::aux_read(over.len() as u64);
            let ids: &[u64] = &self.ids;
            let live: Vec<V> = par::filter_slice(&over, |&v| ids[v as usize] != CLOSED);
            if live.is_empty() {
                return None;
            }
            let live_ref: &[V] = &live;
            let new_base = par::reduce_min(0, live.len(), u64::MAX, |i| ids[live_ref[i] as usize]);
            self.base = new_base;
            self.dead.iter_mut().for_each(|d| *d = 0);
            self.scatter_live(&live);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(b: &mut Buckets) -> Vec<(u64, Vec<V>)> {
        let mut out = Vec::new();
        while let Some((k, mut vs)) = b.next_bucket() {
            vs.sort_unstable();
            out.push((k, vs));
        }
        out
    }

    #[test]
    fn increasing_extraction_order() {
        let keys = [5u64, 1, 5, 3, 1];
        let mut b = Buckets::new(5, Order::Increasing, Packing::SemiEager, |v| {
            Some(keys[v as usize])
        });
        let got = drain(&mut b);
        assert_eq!(got, vec![(1, vec![1, 4]), (3, vec![3]), (5, vec![0, 2])]);
    }

    #[test]
    fn decreasing_extraction_order() {
        let keys = [5u64, 1, 9, 3];
        let mut b = Buckets::new(4, Order::Decreasing, Packing::SemiEager, |v| {
            Some(keys[v as usize])
        });
        let got = drain(&mut b);
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![9, 5, 3, 1]
        );
    }

    #[test]
    fn none_vertices_never_appear() {
        let mut b = Buckets::new(6, Order::Increasing, Packing::SemiEager, |v| {
            if v % 2 == 0 {
                Some(v as u64)
            } else {
                None
            }
        });
        let got = drain(&mut b);
        let all: Vec<V> = got.into_iter().flat_map(|(_, vs)| vs).collect();
        assert_eq!(all, vec![0, 2, 4]);
    }

    #[test]
    fn update_moves_vertices() {
        let mut b = Buckets::new(3, Order::Increasing, Packing::SemiEager, |_| Some(10));
        b.update(1, 2);
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (2, vec![1]));
        b.update(0, CLOSED);
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (10, vec![2]));
        assert!(b.next_bucket().is_none());
    }

    #[test]
    fn overflow_resplit() {
        // Keys far beyond the open range.
        let mut b = Buckets::new(4, Order::Increasing, Packing::SemiEager, |v| {
            Some(1000 + 500 * v as u64)
        });
        let got = drain(&mut b);
        assert_eq!(
            got.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![1000, 1500, 2000, 2500]
        );
    }

    #[test]
    fn lazy_and_semieager_agree_under_churn() {
        let n = 500usize;
        let run = |packing: Packing| {
            let mut b = Buckets::new(n, Order::Increasing, packing, |v| Some(v as u64 % 50));
            let mut order = Vec::new();
            let mut round = 0u64;
            while let Some((k, vs)) = b.next_bucket() {
                order.push((k, {
                    let mut s = vs.clone();
                    s.sort_unstable();
                    s
                }));
                round += 1;
                // Push a fraction of the extracted vertices to later buckets.
                for &v in vs.iter().filter(|&&v| (v as u64 + round) % 3 == 0) {
                    if k < 200 {
                        b.update(v, k + 7);
                    }
                }
            }
            order
        };
        assert_eq!(run(Packing::Lazy), run(Packing::SemiEager));
    }

    #[test]
    fn batched_and_sequential_updates_agree_under_churn() {
        // Same churn as above, but one side applies each round's moves as a
        // single (parallel-path) batch. The batch is padded with duplicate
        // no-op moves so it clears SEQ_BATCH and exercises last-wins dedup.
        let n = 500usize;
        let run = |batched: bool| {
            let mut b = Buckets::new(n, Order::Increasing, Packing::SemiEager, |v| {
                Some(v as u64 % 50)
            });
            let mut order = Vec::new();
            let mut round = 0u64;
            while let Some((k, vs)) = b.next_bucket() {
                order.push((k, {
                    let mut s = vs.clone();
                    s.sort_unstable();
                    s
                }));
                round += 1;
                let moved: Vec<V> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as u64 + round) % 3 == 0 && k < 200)
                    .collect();
                if batched {
                    let mut batch: Vec<(V, u64)> = Vec::new();
                    for &v in &moved {
                        batch.push((v, k + 3)); // overwritten by the later move
                        batch.push((v, k + 7));
                    }
                    while batch.len() < SEQ_BATCH && !batch.is_empty() {
                        let dup = batch[0].0;
                        batch.insert(0, (dup, k + 1)); // earlier duplicate loses
                    }
                    b.update_batch(&batch);
                } else {
                    for &v in &moved {
                        b.update(v, k + 7);
                    }
                }
            }
            order
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn parallel_construction_matches_sequential_inserts() {
        // Large enough that new() takes the counting-sort scatter path for
        // both the open range and the overflow bucket.
        let n = 10_000usize;
        let key = |v: u32| match v % 5 {
            0 => None,
            1 => Some(v as u64 % 90),          // open range
            _ => Some(500 + (v as u64 % 300)), // overflow
        };
        let mut b = Buckets::new(n, Order::Increasing, Packing::SemiEager, key);
        let mut expected: Vec<(u64, Vec<V>)> = {
            let mut by_key: std::collections::BTreeMap<u64, Vec<V>> = Default::default();
            for v in 0..n as V {
                if let Some(k) = key(v) {
                    by_key.entry(k).or_default().push(v);
                }
            }
            by_key.into_iter().collect()
        };
        let got = drain(&mut b);
        expected.retain(|(_, vs)| !vs.is_empty());
        assert_eq!(got, expected);
    }

    #[test]
    fn big_batch_with_closes_and_overflow_moves() {
        let n = 4096usize;
        let mut b = Buckets::new(n, Order::Increasing, Packing::SemiEager, |v| {
            Some(v as u64 % 8)
        });
        // One parallel batch: close every multiple of 3, push every multiple
        // of 4 far into the overflow, leave the rest.
        let batch: Vec<(V, u64)> = (0..n as V)
            .filter_map(|v| {
                if v % 3 == 0 {
                    Some((v, CLOSED))
                } else if v % 4 == 0 {
                    Some((v, 100_000 + v as u64))
                } else {
                    None
                }
            })
            .collect();
        assert!(batch.len() >= SEQ_BATCH);
        // The batch is one move per vertex: exercise the distinct fast path.
        b.update_batch_distinct(&batch);
        let got = drain(&mut b);
        let extracted: Vec<V> = got.iter().flat_map(|(_, vs)| vs.iter().copied()).collect();
        assert!(
            extracted.iter().all(|&v| v % 3 != 0),
            "closed vertex escaped"
        );
        for (k, vs) in &got {
            for &v in vs {
                if v % 4 == 0 {
                    assert_eq!(*k, 100_000 + v as u64, "overflow move lost");
                } else {
                    assert_eq!(*k, v as u64 % 8);
                }
            }
        }
        let expected_count = (0..n as V).filter(|v| v % 3 != 0).count();
        assert_eq!(extracted.len(), expected_count);
    }

    #[test]
    fn kcore_style_monotone_updates() {
        // Simulate peeling: everyone starts at degree, moves down as
        // neighbors vanish, clamped at the current bucket.
        let degrees = [3u64, 3, 2, 1];
        let mut b = Buckets::new(4, Order::Increasing, Packing::SemiEager, |v| {
            Some(degrees[v as usize])
        });
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (1, vec![3]));
        // Vertex 2 loses a neighbor: key would drop to 1 but clamps to >= 1.
        b.update(2, 1);
        let (k, vs) = b.next_bucket().unwrap();
        assert_eq!((k, vs), (1, vec![2]));
    }
}
