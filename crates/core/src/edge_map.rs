//! `edgeMap`: frontier-based graph traversal (§2, §4.1).
//!
//! Four implementations of the sparse (push) direction are provided, matching
//! the paper's taxonomy:
//!
//! * [`SparseImpl::Sparse`] — Ligra's original `edgeMapSparse`: allocates an
//!   intermediate array proportional to the frontier's out-degree sum (up to
//!   `O(m)` — *memory-inefficient*, violates the PSAM; kept as the baseline of
//!   Table 5);
//! * [`SparseImpl::Blocked`] — GBBS's `edgeMapBlocked`: same `O(Σdeg)`
//!   allocation but writes only as many cache lines as the output frontier;
//! * [`SparseImpl::Chunked`] — the paper's **`edgeMapChunked`** (Algorithm 1):
//!   groups adjacency blocks into ≈`max(4096, davg)`-edge units of work,
//!   writes survivors into pooled chunks, and aggregates them with a prefix
//!   sum, using `O(n)` words of small memory (Theorem 4.1).
//!
//! The dense (pull) direction and Beamer-style direction optimization follow
//! Ligra: dense is chosen when `|U| + Σ_{u∈U} deg(u) > m / 20`.
//!
//! Dense traversal requires a symmetric graph (in-neighbors = out-neighbors),
//! which holds for every input in the paper's evaluation (§5.1.3). The engine
//! *enforces* this via [`sage_graph::Graph::is_symmetric`]: under
//! [`Strategy::Auto`] an asymmetric graph silently stays on the always-correct
//! sparse (push) side, and [`Strategy::ForceDense`] panics rather than pull
//! over out-edges that are not valid in-edges.

use crate::arena;
use crate::vertex_subset::VertexSubset;
use sage_graph::{Graph, V};
use sage_nvram::meter;
use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

/// User-supplied edge function, mirroring Ligra's `F` (§2 and Figure 4).
pub trait EdgeMapFn: Sync {
    /// Non-atomic update, called from the dense direction where each
    /// destination is processed by exactly one thread.
    fn update(&self, s: V, d: V, w: u32) -> bool;

    /// Atomic update (CAS-based), called from the sparse direction where many
    /// sources may target `d` concurrently.
    fn update_atomic(&self, s: V, d: V, w: u32) -> bool;

    /// Whether destination `d` should still be visited.
    fn cond(&self, d: V) -> bool;
}

/// Traversal direction policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Beamer direction optimization with the `m/20` threshold.
    Auto,
    /// Always push (sparse).
    ForceSparse,
    /// Always pull (dense).
    ForceDense,
}

/// Which sparse traversal implementation to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparseImpl {
    /// The paper's memory-efficient `edgeMapChunked` (default).
    Chunked,
    /// GBBS's `edgeMapBlocked`.
    Blocked,
    /// Ligra's `edgeMapSparse`.
    Sparse,
}

/// Options for [`edge_map`].
#[derive(Clone, Copy, Debug)]
pub struct EdgeMapOpts {
    /// Direction policy.
    pub strategy: Strategy,
    /// Sparse implementation.
    pub sparse_impl: SparseImpl,
    /// Dense threshold denominator: dense when `|U| + Σdeg > m / den`.
    pub dense_threshold_den: usize,
}

impl Default for EdgeMapOpts {
    fn default() -> Self {
        Self {
            strategy: Strategy::Auto,
            sparse_impl: SparseImpl::Chunked,
            dense_threshold_den: 20,
        }
    }
}

/// Apply `f` over the edges out of `frontier`, returning the new frontier
/// (vertices `d` with an edge `(s,d)`, `s ∈ frontier`, `cond(d)` true and
/// `update(s,d,w)` true).
pub fn edge_map<G: Graph, F: EdgeMapFn>(
    g: &G,
    frontier: &mut VertexSubset,
    f: &F,
    opts: EdgeMapOpts,
) -> VertexSubset {
    let n = g.num_vertices();
    if frontier.is_empty() {
        return VertexSubset::empty(n);
    }
    let dense = match opts.strategy {
        Strategy::ForceSparse => false,
        Strategy::ForceDense => {
            assert!(
                g.is_symmetric(),
                "dense (pull) edge_map reads out-edges as in-edges, which is only \
                 correct on a symmetric graph; symmetrize the input (or mark_symmetric \
                 a known-undirected one), or use Strategy::Auto / ForceSparse"
            );
            true
        }
        Strategy::Auto => {
            // Asymmetric graphs stay on the push side (pull would traverse
            // out-edges that are not valid in-edges); checking the flag first
            // skips the O(|frontier|) degree-sum estimate entirely for them.
            g.is_symmetric() && {
                let work = frontier.len() + frontier.out_degree_sum(g);
                work > g.num_edges() / opts.dense_threshold_den.max(1)
            }
        }
    };
    if dense {
        let flags = frontier.as_dense();
        edge_map_dense(g, flags, f)
    } else {
        let ids = frontier.as_sparse();
        let out = match opts.sparse_impl {
            SparseImpl::Chunked => edge_map_chunked(g, ids, f),
            SparseImpl::Blocked => edge_map_blocked(g, ids, f),
            SparseImpl::Sparse => edge_map_sparse(g, ids, f),
        };
        VertexSubset::from_sparse(n, out)
    }
}

/// Dense (pull) traversal: scan the in-edges of every still-eligible vertex.
///
/// Graphs without O(1) random access (compressed) decode each adjacency
/// block *once* into pooled [`arena`] scratch and probe the decoded slice,
/// instead of interleaving varint decoding with the per-edge `cond` probe —
/// early exit stays block-granular either way (§4.2.3). Random-access
/// graphs stream directly; buffering would only add a copy. The pool round
/// trip costs two mutex ops, so only multi-block vertices take it.
fn edge_map_dense<G: Graph, F: EdgeMapFn>(g: &G, flags: &[bool], f: &F) -> VertexSubset {
    let n = g.num_vertices();
    let bs = g.block_size();
    let buffered = !g.supports_random_access();
    let out: Vec<bool> = par::par_map(n, |di| {
        let d = di as V;
        if !f.cond(d) {
            return false;
        }
        let mut added = false;
        let mut processed = 0u64;
        if buffered && g.degree(d) > bs {
            let mut buf = arena::fetch_edges(bs);
            let mut go = true;
            for b in 0..g.num_blocks_of(d) {
                if !go {
                    break;
                }
                buf.clear();
                g.decode_block(d, b, |_, s, w| buf.push((s, w)));
                for &(s, w) in buf.iter() {
                    processed += 1;
                    if flags[s as usize] && f.update(s, d, w) {
                        added = true;
                    }
                    if !f.cond(d) {
                        go = false;
                        break;
                    }
                }
            }
            arena::release_edges(buf);
        } else {
            g.for_each_edge_while(d, |s, w| {
                processed += 1;
                if flags[s as usize] && f.update(s, d, w) {
                    added = true;
                }
                f.cond(d)
            });
        }
        meter::aux_read(processed + 1);
        if added {
            meter::aux_write(1);
        }
        added
    });
    VertexSubset::from_dense(n, out)
}

/// Ligra's `edgeMapSparse`: `O(Σ_{u∈U} deg(u))` intermediate memory (§4.1.1).
pub fn edge_map_sparse<G: Graph, F: EdgeMapFn>(g: &G, ids: &[V], f: &F) -> Vec<V> {
    let mut offs: Vec<u64> = par::par_map(ids.len(), |i| g.degree(ids[i]) as u64);
    let total = par::scan_add(&mut offs) as usize;
    // The memory-inefficient allocation this paper eliminates: one slot per
    // incident edge.
    let mut slots: Vec<V> = vec![sage_graph::NONE_V; total];
    meter::aux_write(total as u64);
    {
        let sp = par::SendPtr(slots.as_mut_ptr());
        let offs_ref: &[u64] = &offs;
        par::par_for(0, ids.len(), |i| {
            let u = ids[i];
            let base = offs_ref[i] as usize;
            let mut j = 0usize;
            let mut hits = 0u64;
            g.for_each_edge(u, |d, w| {
                if f.cond(d) && f.update_atomic(u, d, w) {
                    // SAFETY: slot `base + j` belongs to source `u` alone.
                    unsafe { *sp.add(base + j) = d };
                    hits += 1;
                }
                j += 1;
            });
            meter::aux_read(j as u64);
            meter::aux_write(hits);
        });
    }
    par::filter_slice(&slots, |&v| v != sage_graph::NONE_V)
}

/// Work unit for the blocked traversal (edges per block).
const EM_BLOCK_EDGES: usize = 2048;

/// GBBS's `edgeMapBlocked`: `O(Σdeg)` slots but compact per-block writes.
pub fn edge_map_blocked<G: Graph, F: EdgeMapFn>(g: &G, ids: &[V], f: &F) -> Vec<V> {
    let mut offs: Vec<u64> = par::par_map(ids.len(), |i| g.degree(ids[i]) as u64);
    let total = par::scan_add(&mut offs) as usize;
    if total == 0 {
        return Vec::new();
    }
    let nblocks = total.div_ceil(EM_BLOCK_EDGES);
    let mut slots: Vec<V> = Vec::with_capacity(total);
    let mut counts = vec![0u64; nblocks];
    {
        let sp = par::SendPtr(slots.as_mut_ptr());
        let cp = par::SendPtr(counts.as_mut_ptr());
        let offs_ref: &[u64] = &offs;
        par::par_for_grain(0, nblocks, 1, |b| {
            let lo = b * EM_BLOCK_EDGES;
            let hi = ((b + 1) * EM_BLOCK_EDGES).min(total);
            // First frontier vertex whose edge range intersects [lo, hi).
            let mut vi = match offs_ref.binary_search(&(lo as u64)) {
                Ok(mut i) => {
                    // Skip zero-degree entries mapping to the same offset.
                    while i + 1 < offs_ref.len() && offs_ref[i + 1] as usize <= lo {
                        i += 1;
                    }
                    i
                }
                Err(i) => i - 1,
            };
            let mut written = 0usize;
            let mut pos = lo;
            while pos < hi && vi < ids.len() {
                let u = ids[vi];
                let u_base = offs_ref[vi] as usize;
                let u_deg = g.degree(u);
                let local_lo = pos - u_base;
                let local_hi = (hi - u_base).min(u_deg);
                let mut j = 0usize;
                g.for_each_edge(u, |d, w| {
                    if j >= local_lo && j < local_hi && f.cond(d) && f.update_atomic(u, d, w) {
                        // SAFETY: block `b` owns slots [lo, hi); writes compact.
                        unsafe { *sp.add(lo + written) = d };
                        written += 1;
                    }
                    j += 1;
                });
                pos = u_base + local_hi;
                vi += 1;
            }
            meter::aux_read((hi - lo) as u64);
            meter::aux_write(written as u64);
            // SAFETY: each block writes its own counter.
            unsafe { *cp.add(b) = written as u64 };
        });
    }
    // Compact the per-block segments.
    let mut out_offs = counts.clone();
    let out_len = par::scan_add(&mut out_offs) as usize;
    let mut out: Vec<V> = Vec::with_capacity(out_len);
    {
        let op = par::SendPtr(out.as_mut_ptr());
        let sp = par::SendPtr(slots.as_mut_ptr());
        let counts_ref: &[u64] = &counts;
        let out_offs_ref: &[u64] = &out_offs;
        par::par_for_grain(0, nblocks, 1, |b| {
            let src = b * EM_BLOCK_EDGES;
            let dst = out_offs_ref[b] as usize;
            let cnt = counts_ref[b] as usize;
            // SAFETY: disjoint destination ranges; sources were initialized.
            unsafe { std::ptr::copy_nonoverlapping(sp.add(src) as *const V, op.add(dst), cnt) };
        });
        // SAFETY: all out_len slots written above.
        unsafe { out.set_len(out_len) };
    }
    out
}

// The pooled output chunks of the paper's pool-based chunk allocator
// (§4.1.2) live in `crate::arena`: each query draws from its own
// `QueryArena` when one is installed, falling back to a process-wide shared
// pool for one-shot runs.

/// The paper's `edgeMapChunked` (Algorithm 1): memory-efficient sparse
/// traversal with `O(n)` words of intermediate memory (Theorem 4.1).
pub fn edge_map_chunked<G: Graph, F: EdgeMapFn>(g: &G, ids: &[V], f: &F) -> Vec<V> {
    let bs = g.block_size();
    let davg = g.avg_degree();
    let chunk_size = 4096.max(davg); // Algorithm 1, line 1
    let min_group_size = 4096.max(davg); // Algorithm 1, line 2

    // Lines 11-13: output blocks B for u ∈ U and prefix sums O of block degrees.
    let mut vblock_offs: Vec<u64> = par::par_map(ids.len(), |i| g.num_blocks_of(ids[i]) as u64);
    let total_blocks = par::scan_add(&mut vblock_offs) as usize;
    if total_blocks == 0 {
        return Vec::new();
    }
    // blocks[j] = (frontier index, block id within vertex)
    let mut blocks: Vec<(u32, u32)> = Vec::with_capacity(total_blocks);
    {
        let bp = par::SendPtr(blocks.as_mut_ptr());
        let vb: &[u64] = &vblock_offs;
        par::par_for(0, ids.len(), |i| {
            let base = vb[i] as usize;
            let nb = g.num_blocks_of(ids[i]);
            for b in 0..nb {
                // SAFETY: vertex i owns block slots [base, base + nb).
                unsafe { bp.add(base + b).write((i as u32, b as u32)) };
            }
        });
        // SAFETY: every slot written above.
        unsafe { blocks.set_len(total_blocks) };
    }
    // Prefix sums of block-degree *estimates*. For plain graphs the estimate
    // is exact; for filtered views (whose active degree can be far below
    // blocks x FB) it only steers load balancing, so it is clamped into
    // [1, FB] rather than assumed exact.
    let mut block_deg: Vec<u64> = {
        let blocks_ref: &[(u32, u32)] = &blocks;
        par::par_map(total_blocks, |j| {
            let (i, b) = blocks_ref[j];
            let deg = g.degree(ids[i as usize]);
            deg.saturating_sub((b as usize) * bs).clamp(1, bs) as u64
        })
    };
    let du = par::scan_add(&mut block_deg) as usize; // Line 14: dU

    // Lines 15-18: group boundaries.
    let p = par::num_threads();
    let group_size = (du.div_ceil(8 * p)).max(min_group_size);
    let num_groups = du.div_ceil(group_size).max(1);
    let group_start = |gi: usize| -> usize {
        // First block whose prefix-degree is >= gi * group_size.
        let target = (gi * group_size) as u64;
        block_deg.partition_point(|&x| x < target)
    };

    // Lines 19-23: process groups; per-group chunk vectors. On compressed
    // graphs each block is decoded once into per-query arena scratch (one
    // buffer per group, fetched up front) and the update/cond pass runs
    // over the decoded slice.
    let buffered = !g.supports_random_access();
    let group_results: Vec<Vec<Vec<V>>> = {
        let blocks_ref: &[(u32, u32)] = &blocks;
        par::par_map_grain(num_groups, 1, |gi| {
            let jlo = group_start(gi);
            let jhi = if gi + 1 == num_groups {
                total_blocks
            } else {
                group_start(gi + 1)
            };
            let mut chunks: Vec<Vec<V>> = Vec::new();
            let mut dbuf = buffered.then(|| arena::fetch_edges(bs.min(arena::EDGES_RETAIN_CAP)));
            let mut processed = 0u64;
            let mut hits = 0u64;
            for &(i, b) in &blocks_ref[jlo..jhi] {
                let u = ids[i as usize];
                // FetchChunk: ensure space for a full block.
                let need = bs;
                if chunks
                    .last()
                    .map_or(true, |c| c.len() + need > c.capacity())
                {
                    chunks.push(arena::fetch_chunk(chunk_size.max(need)));
                }
                let chunk = chunks.last_mut().unwrap();
                match dbuf.as_mut() {
                    Some(buf) => {
                        buf.clear();
                        g.decode_block(u, b as usize, |_, d, w| buf.push((d, w)));
                        for &(d, w) in buf.iter() {
                            processed += 1;
                            if f.cond(d) && f.update_atomic(u, d, w) {
                                chunk.push(d);
                                hits += 1;
                            }
                        }
                    }
                    None => {
                        g.decode_block(u, b as usize, |_, d, w| {
                            processed += 1;
                            if f.cond(d) && f.update_atomic(u, d, w) {
                                chunk.push(d);
                                hits += 1;
                            }
                        });
                    }
                }
            }
            if let Some(buf) = dbuf {
                arena::release_edges(buf);
            }
            meter::aux_read(processed);
            meter::aux_write(hits);
            chunks
        })
    };

    // Lines 24-30: aggregate chunks with a scan and parallel copy.
    let all_chunks: Vec<&Vec<V>> = group_results.iter().flatten().collect();
    let mut sizes: Vec<u64> = all_chunks.iter().map(|c| c.len() as u64).collect();
    let out_len = par::scan_add(&mut sizes) as usize;
    let mut out: Vec<V> = Vec::with_capacity(out_len);
    {
        let op = par::SendPtr(out.as_mut_ptr());
        let sizes_ref: &[u64] = &sizes;
        let chunks_ref: &[&Vec<V>] = &all_chunks;
        par::par_for_grain(0, chunks_ref.len(), 1, |ci| {
            let c = chunks_ref[ci];
            let dst = sizes_ref[ci] as usize;
            // SAFETY: destination ranges are disjoint per chunk.
            unsafe { std::ptr::copy_nonoverlapping(c.as_ptr(), op.add(dst), c.len()) };
        });
        // SAFETY: out_len slots written.
        unsafe { out.set_len(out_len) };
    }
    meter::aux_write(out_len as u64);
    for group in group_results {
        for chunk in group {
            arena::release_chunk(chunk);
        }
    }
    out
}

/// A ready-made [`EdgeMapFn`] for BFS-style "claim the destination once"
/// traversals over an atomic parent array; reused by several algorithms.
pub struct ClaimFn<'a> {
    /// `parents[d] == NONE_V` means unvisited.
    pub parents: &'a [AtomicU64],
}

/// Sentinel stored in [`ClaimFn::parents`] for unvisited vertices.
pub const UNVISITED: u64 = u64::MAX;

impl EdgeMapFn for ClaimFn<'_> {
    fn update(&self, s: V, d: V, _w: u32) -> bool {
        if self.parents[d as usize].load(Ordering::Relaxed) == UNVISITED {
            self.parents[d as usize].store(s as u64, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    fn update_atomic(&self, s: V, d: V, _w: u32) -> bool {
        // ORDERING: AcqRel success / Acquire failure — parent-claim CAS:
        // Release publishes the claim, Acquire orders losers after it.
        self.parents[d as usize]
            .compare_exchange(UNVISITED, s as u64, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    fn cond(&self, d: V) -> bool {
        self.parents[d as usize].load(Ordering::Relaxed) == UNVISITED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_graph::gen;

    fn bfs_levels<G: Graph>(g: &G, src: V, opts: EdgeMapOpts) -> Vec<u64> {
        let n = g.num_vertices();
        let parents: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(UNVISITED)).collect();
        parents[src as usize].store(src as u64, Ordering::Relaxed);
        let mut levels = vec![u64::MAX; n];
        levels[src as usize] = 0;
        let mut frontier = VertexSubset::single(n, src);
        let mut level = 0u64;
        while !frontier.is_empty() {
            level += 1;
            let claim = ClaimFn { parents: &parents };
            let mut next = edge_map(g, &mut frontier, &claim, opts);
            for v in next.as_sparse() {
                levels[*v as usize] = level;
            }
            frontier = next;
        }
        levels
    }

    fn check_all_variants_agree<G: Graph>(g: &G, src: V) {
        let base = bfs_levels(
            g,
            src,
            EdgeMapOpts {
                strategy: Strategy::ForceSparse,
                sparse_impl: SparseImpl::Sparse,
                ..Default::default()
            },
        );
        for (name, opts) in [
            (
                "chunked",
                EdgeMapOpts {
                    strategy: Strategy::ForceSparse,
                    sparse_impl: SparseImpl::Chunked,
                    ..Default::default()
                },
            ),
            (
                "blocked",
                EdgeMapOpts {
                    strategy: Strategy::ForceSparse,
                    sparse_impl: SparseImpl::Blocked,
                    ..Default::default()
                },
            ),
            (
                "dense",
                EdgeMapOpts {
                    strategy: Strategy::ForceDense,
                    ..Default::default()
                },
            ),
            ("auto", EdgeMapOpts::default()),
        ] {
            let got = bfs_levels(g, src, opts);
            assert_eq!(got, base, "variant {name} diverged");
        }
    }

    #[test]
    fn variants_agree_on_rmat() {
        let g = gen::rmat(10, 8, gen::RmatParams::default(), 3);
        check_all_variants_agree(&g, 0);
    }

    #[test]
    fn variants_agree_on_compressed_rmat() {
        let csr = gen::rmat(9, 12, gen::RmatParams::web(), 5);
        let g = sage_graph::CompressedCsr::from_csr(&csr, 64);
        check_all_variants_agree(&g, 1);
    }

    #[test]
    fn compressed_traversals_use_arena_decode_scratch() {
        // Every edge_map direction over a compressed graph must agree with
        // the CSR reference while drawing its block-decode buffers from the
        // installed arena (and returning them: the pool ends non-empty).
        let arena = crate::arena::QueryArena::new();
        let csr = gen::rmat(9, 12, gen::RmatParams::web(), 5);
        let g = sage_graph::CompressedCsr::from_csr(&csr, 64);
        arena.enter(|| check_all_variants_agree(&g, 0));
        assert!(
            arena.retained_edge_buffers() >= 1,
            "block decode must round-trip through the arena pool"
        );
    }

    #[test]
    fn variants_agree_on_grid() {
        let g = gen::grid(30, 40);
        check_all_variants_agree(&g, 0);
    }

    #[test]
    fn variants_agree_on_star_and_path() {
        check_all_variants_agree(&gen::star(500), 3);
        check_all_variants_agree(&gen::path(200), 0);
    }

    fn directed_two_hop() -> sage_graph::Csr {
        // 0 -> 1 -> 2 with NO reverse edges: pulling over out-edges would
        // never discover anything from the frontier.
        sage_graph::build_csr(
            sage_graph::EdgeList::new(3, vec![(0, 1), (1, 2)]),
            sage_graph::BuildOptions {
                symmetrize: false,
                ..Default::default()
            },
        )
    }

    #[test]
    fn auto_falls_back_to_sparse_on_asymmetric_graphs() {
        let g = directed_two_hop();
        assert!(!g.is_symmetric());
        // The frontier {0, 1} covers the whole edge set, so the Beamer rule
        // alone would have chosen dense; the symmetry guard must keep the
        // traversal on the (correct) push side.
        let parents: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(UNVISITED)).collect();
        parents[0].store(0, Ordering::Relaxed);
        let mut frontier = VertexSubset::single(3, 0);
        let mut next = edge_map(
            &g,
            &mut frontier,
            &ClaimFn { parents: &parents },
            EdgeMapOpts {
                strategy: Strategy::Auto,
                dense_threshold_den: 1_000_000, // always "dense" by work
                ..Default::default()
            },
        );
        assert_eq!(next.as_sparse(), &[1]);
    }

    #[test]
    #[should_panic(expected = "only correct on a symmetric graph")]
    fn force_dense_rejects_asymmetric_graphs() {
        let g = directed_two_hop();
        let parents: Vec<AtomicU64> = (0..3).map(|_| AtomicU64::new(UNVISITED)).collect();
        let mut frontier = VertexSubset::single(3, 0);
        let _ = edge_map(
            &g,
            &mut frontier,
            &ClaimFn { parents: &parents },
            EdgeMapOpts {
                strategy: Strategy::ForceDense,
                ..Default::default()
            },
        );
    }

    #[test]
    fn empty_frontier_returns_empty() {
        let g = gen::path(10);
        let mut f = VertexSubset::empty(10);
        let parents: Vec<AtomicU64> = (0..10).map(|_| AtomicU64::new(UNVISITED)).collect();
        let out = edge_map(
            &g,
            &mut f,
            &ClaimFn { parents: &parents },
            EdgeMapOpts::default(),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn chunked_handles_huge_degree_vertex() {
        let g = gen::star(20_000);
        let parents: Vec<AtomicU64> = (0..20_000).map(|_| AtomicU64::new(UNVISITED)).collect();
        parents[0].store(0, Ordering::Relaxed);
        let out = edge_map_chunked(&g, &[0], &ClaimFn { parents: &parents });
        assert_eq!(out.len(), 19_999);
    }

    /// The freelist bound every release must respect: at most
    /// `4 × num_threads` chunks of at most `CHUNK_RETAIN_CAP` entries.
    fn chunk_pool_bound_bytes() -> usize {
        4 * par::num_threads() * crate::arena::CHUNK_RETAIN_CAP * std::mem::size_of::<V>()
    }

    /// Regression test for unbounded DRAM retention: the pool used to retain
    /// released chunks of *any* capacity, so one traversal of a
    /// high-average-degree graph parked `4 × num_threads` arbitrarily large
    /// buffers in DRAM forever. Outsized chunks must be shrunk on release.
    #[test]
    fn chunk_pool_does_not_retain_outsized_chunks() {
        // Run inside a private arena so the bound is exact regardless of
        // what other tests park in the shared fallback pool concurrently.
        let arena = crate::arena::QueryArena::new();
        arena.enter(|| {
            let cap = crate::arena::CHUNK_RETAIN_CAP;
            let huge: Vec<Vec<V>> = (0..4 * par::num_threads())
                .map(|_| crate::arena::fetch_chunk(4 * cap))
                .collect();
            for chunk in huge {
                assert!(chunk.capacity() >= 4 * cap);
                crate::arena::release_chunk(chunk);
            }
        });
        let retained = arena.retained_chunk_bytes();
        assert!(
            retained <= chunk_pool_bound_bytes(),
            "pool retains {retained} bytes, bound {}",
            chunk_pool_bound_bytes()
        );
    }

    /// The huge-degree frontier scenario, driven through `edge_map_chunked`
    /// itself: a block size far above `CHUNK_RETAIN_CAP` makes the traversal
    /// fetch a multi-megabyte chunk (`FetchChunk` sizes chunks as
    /// `max(chunk_size, block_size)`), which the unfixed pool then retained
    /// whole. After the traversal the pool must be within its bytes bound —
    /// the paper's §4.1.2 pool holds `O(P)` *bounded* chunks, not `O(P)`
    /// frontiers.
    #[test]
    fn chunk_pool_bounded_after_huge_degree_scenario() {
        let arena = crate::arena::QueryArena::new();
        arena.enter(|| {
            let g = sage_graph::CompressedCsr::from_csr(&gen::star(20_000), 1 << 20);
            let parents: Vec<AtomicU64> = (0..20_000).map(|_| AtomicU64::new(UNVISITED)).collect();
            parents[0].store(0, Ordering::Relaxed);
            let out = edge_map_chunked(&g, &[0], &ClaimFn { parents: &parents });
            assert_eq!(out.len(), 19_999);
        });
        let retained = arena.retained_chunk_bytes();
        assert!(
            retained <= chunk_pool_bound_bytes(),
            "pool retains {retained} bytes after huge-degree traversal, bound {}",
            chunk_pool_bound_bytes()
        );
    }

    #[test]
    fn blocked_handles_zero_degree_frontier_vertices() {
        // Zero-degree vertices in the frontier exercise the binary-search
        // boundary logic in edge_map_blocked.
        let mut edges = vec![(0u32, 1u32)];
        for i in 0..50u32 {
            edges.push((2, 10 + i));
        }
        let g = sage_graph::build_csr(
            sage_graph::EdgeList::new(100, edges),
            sage_graph::BuildOptions::default(),
        );
        let parents: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(UNVISITED)).collect();
        // Frontier: {0 (deg 1), 5 (deg 0), 2 (deg 50), 7 (deg 0)}.
        for v in [0u32, 5, 2, 7] {
            parents[v as usize].store(v as u64, Ordering::Relaxed);
        }
        let out = edge_map_blocked(&g, &[0, 5, 2, 7], &ClaimFn { parents: &parents });
        let mut sorted = out.clone();
        sorted.sort_unstable();
        let mut want: Vec<V> = (10..60).collect();
        want.insert(0, 1);
        assert_eq!(sorted, want);
    }

    #[test]
    fn chunked_over_graph_filter() {
        use crate::filter::GraphFilter;
        // edgeMapChunked must work on the filter's block-granular view.
        let g = gen::complete(100);
        let mut f = GraphFilter::new(&g, false);
        f.filter_edges(|_, d, _| d % 2 == 0);
        let parents: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(UNVISITED)).collect();
        parents[1].store(1, Ordering::Relaxed);
        let out = edge_map_chunked(&f, &[1], &ClaimFn { parents: &parents });
        let mut sorted = out.clone();
        sorted.sort_unstable();
        let want: Vec<V> = (0..100).filter(|&d| d % 2 == 0).collect();
        assert_eq!(sorted, want);
    }

    #[test]
    fn sparse_dedup_via_atomic_claim() {
        // Two frontier vertices share neighbors; each target claimed once.
        let g = gen::complete(50);
        let parents: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(UNVISITED)).collect();
        parents[0].store(0, Ordering::Relaxed);
        parents[1].store(1, Ordering::Relaxed);
        let out = edge_map_chunked(&g, &[0, 1], &ClaimFn { parents: &parents });
        let mut sorted = out.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), out.len(), "duplicate emission");
        assert_eq!(out.len(), 48);
    }
}
