//! Model-based property test for the Julienne bucketing structure: random
//! operation sequences are applied both to [`Buckets`] and to a trivial
//! BTreeMap reference model, and the extraction sequences must coincide.
//!
//! Two harnesses: `run_scenario` interleaves point updates (the sequential
//! path), `run_batched_scenario` applies each round's moves as one
//! `update_batch` call with duplicate vertices allowed (last move wins), at
//! batch sizes that exercise the parallel dedup/scatter path.

use proptest::prelude::*;
use sage_core::bucket::{Buckets, Order, Packing, CLOSED, OPEN_BUCKETS, SEQ_BATCH};
use std::collections::BTreeMap;

/// Reference model: key -> sorted set of vertices.
struct Model {
    key_of: Vec<u64>, // CLOSED = absent
    order: Order,
}

impl Model {
    fn new(keys: &[u64], order: Order) -> Self {
        Self {
            key_of: keys.to_vec(),
            order,
        }
    }

    fn update(&mut self, v: u32, key: u64) {
        self.key_of[v as usize] = key;
    }

    fn next_bucket(&mut self) -> Option<(u64, Vec<u32>)> {
        let mut by_key: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (v, &k) in self.key_of.iter().enumerate() {
            if k != CLOSED {
                by_key.entry(k).or_default().push(v as u32);
            }
        }
        let (&k, _) = match self.order {
            Order::Increasing => by_key.iter().next()?,
            Order::Decreasing => by_key.iter().next_back()?,
        };
        let vs = by_key.remove(&k).unwrap();
        for &v in &vs {
            self.key_of[v as usize] = CLOSED;
        }
        Some((k, vs))
    }
}

fn run_scenario(
    n: usize,
    keys: Vec<u64>,
    moves: Vec<(u32, u64)>,
    order: Order,
    packing: Packing,
) -> Result<(), TestCaseError> {
    let keys: Vec<u64> = keys.into_iter().take(n).collect();
    let mut model = Model::new(&keys, order);
    let mut buckets = Buckets::new(n, order, packing, |v| {
        let k = keys[v as usize];
        if k == CLOSED {
            None
        } else {
            Some(k)
        }
    });
    let mut move_iter = moves.into_iter();
    loop {
        let got = buckets.next_bucket().map(|(k, mut vs)| {
            vs.sort_unstable();
            (k, vs)
        });
        let want = model.next_bucket();
        prop_assert_eq!(&got, &want, "extraction diverged");
        if got.is_none() {
            break;
        }
        // Interleave a few updates between extractions. Keys are clamped to
        // the just-extracted bucket by both sides (monotonicity contract).
        let (cur, _) = got.unwrap();
        for _ in 0..3 {
            if let Some((v, raw_key)) = move_iter.next() {
                let v = v % n as u32;
                if model.key_of[v as usize] == CLOSED {
                    continue; // already settled; Sage algorithms never reopen
                }
                let key = match order {
                    Order::Increasing => raw_key.clamp(cur, cur + 3 * OPEN_BUCKETS as u64),
                    Order::Decreasing => {
                        raw_key.clamp(cur.saturating_sub(3 * OPEN_BUCKETS as u64), cur)
                    }
                };
                model.update(v, key);
                buckets.update(v, key);
            }
        }
    }
    Ok(())
}

/// Batched variant: between extractions, drain up to `per_round` moves from
/// the move list, apply them in order to the model, and hand the whole batch
/// (duplicates included) to `update_batch` — or, with `distinct`, collapse
/// it to the last move per vertex and use `update_batch_distinct`.
/// Extraction sequences must match either way.
fn run_batched_scenario(
    n: usize,
    keys: Vec<u64>,
    moves: Vec<(u32, u64)>,
    per_round: usize,
    order: Order,
    packing: Packing,
    distinct: bool,
) -> Result<(), TestCaseError> {
    let keys: Vec<u64> = keys.into_iter().take(n).collect();
    let mut model = Model::new(&keys, order);
    let mut buckets = Buckets::new(n, order, packing, |v| {
        let k = keys[v as usize];
        if k == CLOSED {
            None
        } else {
            Some(k)
        }
    });
    let mut move_iter = moves.into_iter();
    loop {
        let got = buckets.next_bucket().map(|(k, mut vs)| {
            vs.sort_unstable();
            (k, vs)
        });
        let want = model.next_bucket();
        prop_assert_eq!(&got, &want, "extraction diverged");
        if got.is_none() {
            break;
        }
        let (cur, _) = got.unwrap();
        let mut batch: Vec<(u32, u64)> = Vec::new();
        for _ in 0..per_round {
            let Some((v, raw_key)) = move_iter.next() else {
                break;
            };
            let v = v % n as u32;
            if model.key_of[v as usize] == CLOSED {
                continue; // already settled; Sage algorithms never reopen
            }
            // Clamp like the monotone algorithms; the span deliberately
            // reaches past the open range so batches churn the overflow
            // bucket (and duplicates of the same v may land on both sides).
            let key = match order {
                Order::Increasing => raw_key.clamp(cur, cur + 3 * OPEN_BUCKETS as u64),
                Order::Decreasing => {
                    raw_key.clamp(cur.saturating_sub(3 * OPEN_BUCKETS as u64), cur)
                }
            };
            model.update(v, key);
            batch.push((v, key));
        }
        if distinct {
            // Last move per vertex wins, as the sequential loop would apply.
            let mut last: std::collections::HashMap<u32, u64> = Default::default();
            for &(v, k) in &batch {
                last.insert(v, k);
            }
            let deduped: Vec<(u32, u64)> = last.into_iter().collect();
            buckets.update_batch_distinct(&deduped);
        } else {
            buckets.update_batch(&batch);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn increasing_matches_model(
        n in 1usize..80,
        keys in proptest::collection::vec(0u64..200, 80),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..60),
    ) {
        run_scenario(n, keys, moves, Order::Increasing, Packing::SemiEager)?;
    }

    #[test]
    fn increasing_lazy_matches_model(
        n in 1usize..80,
        keys in proptest::collection::vec(0u64..200, 80),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..60),
    ) {
        run_scenario(n, keys, moves, Order::Increasing, Packing::Lazy)?;
    }

    #[test]
    fn decreasing_matches_model(
        n in 1usize..80,
        keys in proptest::collection::vec(0u64..200, 80),
        moves in proptest::collection::vec((any::<u32>(), 0u64..200), 0..60),
    ) {
        run_scenario(n, keys, moves, Order::Decreasing, Packing::SemiEager)?;
    }

    #[test]
    fn keys_far_in_overflow(
        n in 1usize..40,
        keys in proptest::collection::vec(1_000u64..100_000, 40),
    ) {
        run_scenario(n, keys, Vec::new(), Order::Increasing, Packing::SemiEager)?;
    }

    // ---- Batched (parallel-path) coverage ----

    #[test]
    fn batched_increasing_matches_model(
        n in 8usize..200,
        keys in proptest::collection::vec(0u64..200, 200),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..600),
    ) {
        // Batches of up to 3*SEQ_BATCH moves with duplicate vertices: hits
        // the parallel dedup + counting-sort scatter, including overflow
        // destinations (keys reach cur + 3*OPEN_BUCKETS).
        run_batched_scenario(
            n, keys, moves, 3 * SEQ_BATCH, Order::Increasing, Packing::SemiEager, false,
        )?;
    }

    #[test]
    fn batched_increasing_lazy_matches_model(
        n in 8usize..200,
        keys in proptest::collection::vec(0u64..200, 200),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..600),
    ) {
        run_batched_scenario(
            n, keys, moves, 3 * SEQ_BATCH, Order::Increasing, Packing::Lazy, false,
        )?;
    }

    #[test]
    fn batched_decreasing_matches_model(
        n in 8usize..200,
        keys in proptest::collection::vec(0u64..400, 200),
        moves in proptest::collection::vec((any::<u32>(), 0u64..400), 0..600),
    ) {
        // Decreasing order flips the internal key space (u64::MAX - 1 - k);
        // semi-eager packing must still pack the right (reversed) buckets.
        run_batched_scenario(
            n, keys, moves, 3 * SEQ_BATCH, Order::Decreasing, Packing::SemiEager, false,
        )?;
    }

    #[test]
    fn batched_overflow_churn_with_duplicates(
        n in 8usize..120,
        keys in proptest::collection::vec(1_000u64..1_400, 120),
        moves in proptest::collection::vec((0u32..40, 1_000u64..2_000), 0..400),
    ) {
        // Start everything in the overflow bucket, then repeatedly move a
        // *small* set of vertices (v % 40 — lots of duplicates per batch)
        // across the open/overflow boundary while extraction re-splits it.
        run_batched_scenario(
            n, keys, moves, 2 * SEQ_BATCH, Order::Increasing, Packing::SemiEager, false,
        )?;
    }

    #[test]
    fn batched_distinct_matches_model(
        n in 8usize..200,
        keys in proptest::collection::vec(0u64..200, 200),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..600),
    ) {
        // The `update_batch_distinct` fast path (no dedup sort) used by the
        // four peeling consumers.
        run_batched_scenario(
            n, keys, moves, 3 * SEQ_BATCH, Order::Increasing, Packing::SemiEager, true,
        )?;
    }
}
