//! Model-based property test for the Julienne bucketing structure: random
//! operation sequences are applied both to [`Buckets`] and to a trivial
//! BTreeMap reference model, and the extraction sequences must coincide.

use proptest::prelude::*;
use sage_core::bucket::{Buckets, Order, Packing, CLOSED, OPEN_BUCKETS};
use std::collections::BTreeMap;

/// Reference model: key -> sorted set of vertices.
struct Model {
    key_of: Vec<u64>, // CLOSED = absent
    order: Order,
}

impl Model {
    fn new(keys: &[u64], order: Order) -> Self {
        Self {
            key_of: keys.to_vec(),
            order,
        }
    }

    fn update(&mut self, v: u32, key: u64) {
        self.key_of[v as usize] = key;
    }

    fn next_bucket(&mut self) -> Option<(u64, Vec<u32>)> {
        let mut by_key: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (v, &k) in self.key_of.iter().enumerate() {
            if k != CLOSED {
                by_key.entry(k).or_default().push(v as u32);
            }
        }
        let (&k, _) = match self.order {
            Order::Increasing => by_key.iter().next()?,
            Order::Decreasing => by_key.iter().next_back()?,
        };
        let vs = by_key.remove(&k).unwrap();
        for &v in &vs {
            self.key_of[v as usize] = CLOSED;
        }
        Some((k, vs))
    }
}

fn run_scenario(
    n: usize,
    keys: Vec<u64>,
    moves: Vec<(u32, u64)>,
    order: Order,
    packing: Packing,
) -> Result<(), TestCaseError> {
    let keys: Vec<u64> = keys.into_iter().take(n).collect();
    let mut model = Model::new(&keys, order);
    let mut buckets = Buckets::new(n, order, packing, |v| {
        let k = keys[v as usize];
        if k == CLOSED {
            None
        } else {
            Some(k)
        }
    });
    let mut move_iter = moves.into_iter();
    loop {
        let got = buckets.next_bucket().map(|(k, mut vs)| {
            vs.sort_unstable();
            (k, vs)
        });
        let want = model.next_bucket();
        prop_assert_eq!(&got, &want, "extraction diverged");
        if got.is_none() {
            break;
        }
        // Interleave a few updates between extractions. Keys are clamped to
        // the just-extracted bucket by both sides (monotonicity contract).
        let (cur, _) = got.unwrap();
        for _ in 0..3 {
            if let Some((v, raw_key)) = move_iter.next() {
                let v = v % n as u32;
                if model.key_of[v as usize] == CLOSED {
                    continue; // already settled; Sage algorithms never reopen
                }
                let key = match order {
                    Order::Increasing => raw_key.clamp(cur, cur + 3 * OPEN_BUCKETS as u64),
                    Order::Decreasing => {
                        raw_key.clamp(cur.saturating_sub(3 * OPEN_BUCKETS as u64), cur)
                    }
                };
                model.update(v, key);
                buckets.update(v, key);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn increasing_matches_model(
        n in 1usize..80,
        keys in proptest::collection::vec(0u64..200, 80),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..60),
    ) {
        run_scenario(n, keys, moves, Order::Increasing, Packing::SemiEager)?;
    }

    #[test]
    fn increasing_lazy_matches_model(
        n in 1usize..80,
        keys in proptest::collection::vec(0u64..200, 80),
        moves in proptest::collection::vec((any::<u32>(), 0u64..500), 0..60),
    ) {
        run_scenario(n, keys, moves, Order::Increasing, Packing::Lazy)?;
    }

    #[test]
    fn decreasing_matches_model(
        n in 1usize..80,
        keys in proptest::collection::vec(0u64..200, 80),
        moves in proptest::collection::vec((any::<u32>(), 0u64..200), 0..60),
    ) {
        run_scenario(n, keys, moves, Order::Decreasing, Packing::SemiEager)?;
    }

    #[test]
    fn keys_far_in_overflow(
        n in 1usize..40,
        keys in proptest::collection::vec(1_000u64..100_000, 40),
    ) {
        run_scenario(n, keys, Vec::new(), Order::Increasing, Packing::SemiEager)?;
    }
}
