//! Model-equivalence property test for the bit-parallel multi-source BFS:
//! on random graphs (directed and symmetrized, with self-loops, duplicate
//! edges, and duplicate sources), a k-source `msbfs_levels` run must produce
//! exactly the distances of k independent single-source `bfs_levels` runs —
//! the bitwise-identity contract the serving layer's batched execution
//! relies on.

use proptest::prelude::*;
use sage_core::algo::bfs::bfs_levels;
use sage_core::algo::msbfs::{msbfs_levels, MAX_SOURCES};
use sage_graph::{build_csr, BuildOptions, EdgeList, V};

fn check_equivalence(
    n: usize,
    edges: Vec<(u32, u32)>,
    raw_sources: Vec<u32>,
    symmetrize: bool,
) -> Result<(), TestCaseError> {
    let n = n.max(1);
    let edges: Vec<(V, V)> = edges
        .into_iter()
        .map(|(u, v)| ((u as usize % n) as V, (v as usize % n) as V))
        .collect();
    let g = build_csr(
        EdgeList::new(n, edges),
        BuildOptions {
            symmetrize,
            ..Default::default()
        },
    );
    // Strategies always hand in 1..=MAX_SOURCES raw sources.
    let sources: Vec<V> = raw_sources
        .into_iter()
        .take(MAX_SOURCES)
        .map(|s| (s as usize % n) as V)
        .collect();
    prop_assert!(!sources.is_empty());

    let ms = msbfs_levels(&g, &sources);
    prop_assert_eq!(ms.levels.len(), sources.len());
    for (i, &s) in sources.iter().enumerate() {
        let (want, _) = bfs_levels(&g, s);
        prop_assert_eq!(
            &ms.levels[i],
            &want,
            "source {} (bit {}) diverged from single-source BFS",
            s,
            i
        );
        let reached = want.iter().filter(|&&l| l != u64::MAX).count();
        prop_assert_eq!(ms.reached[i], reached, "reach count for source {}", s);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sparse random graphs, modest source counts.
    #[test]
    fn matches_independent_bfs_runs(
        n in 1usize..120,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..400),
        sources in proptest::collection::vec(any::<u32>(), 1..16),
        symmetrize in any::<bool>(),
    ) {
        check_equivalence(n, edges, sources, symmetrize)?;
    }

    /// Full 64-source batches — the serving layer's maximum BFS batch — on
    /// denser symmetric graphs (the paper's evaluation regime).
    #[test]
    fn full_batch_matches_independent_bfs_runs(
        n in 8usize..96,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 50..500),
        sources in proptest::collection::vec(any::<u32>(), 64),
    ) {
        check_equivalence(n, edges, sources, true)?;
    }
}
