//! Meter-based regression test for the per-round cost of peeling.
//!
//! The paper reports 130,728 peeling rounds for k-core on Hyperlink2012
//! (§4.3.4), so any Θ(n) term *per round* is an asymptotic bug. Before the
//! parallel bucket engine + reusable histogram scratch, every round paid:
//!
//! * an O(n) allocate/zero/pack inside `histogram_dense`, and
//! * one-at-a-time bucket moves in `Buckets::update_batch`.
//!
//! This test drives a single k-core-shaped round over a *tiny* bucket of a
//! large structure and asserts, via the PSAM meter plus the histogram's own
//! work counter, that the auxiliary work is proportional to the peeled
//! neighborhood — o(n) — and that the dense scratch was allocated exactly
//! once. All meter-sensitive assertions live in this one test function so no
//! concurrently running test pollutes the global meter deltas.

use sage_core::bucket::{Buckets, Order, Packing, SEQ_BATCH};
use sage_graph::V;
use sage_nvram::{meter, Meter};
use sage_parallel::Histogram;

#[test]
fn tiny_bucket_round_performs_sublinear_aux_work() {
    let n = 1usize << 17; // 131,072 vertices in the structure
    let tiny = 2 * SEQ_BATCH; // the peeled bucket: large enough for the
                              // parallel batch path, still ≪ n
    let far = 50_000u64; // everyone else sits far out in the overflow

    // k-core shape: a small lowest bucket, the bulk far away.
    let mut buckets = Buckets::new(n, Order::Increasing, Packing::SemiEager, |v| {
        Some(if (v as usize) < tiny { 1 } else { far })
    });
    // Round-structured histogram (what kcore holds): force the dense path so
    // the test pins the dense-scratch behaviour, and warm it once — the
    // first call is allowed to pay the O(n) scratch allocation.
    let mut hist = Histogram::dense();
    let _ = hist.count(1, 1, n, |_, emit| emit(0));
    assert!(hist.last_work() >= n as u64, "first call pays the alloc");
    assert_eq!(hist.dense_allocations(), 1);

    // ---- One peeling round, fully metered. ----
    let before = Meter::global().snapshot();

    let (k, ids) = buckets.next_bucket().expect("tiny bucket first");
    assert_eq!(k, 1);
    assert_eq!(ids.len(), tiny);

    // Histogram of a synthetic peeled neighborhood (4 neighbors per peeled
    // vertex), exactly how kcore accounts it.
    let total_keys = 4 * ids.len();
    let counts = hist.count(ids.len(), total_keys, n, |i, emit| {
        for j in 0..4u32 {
            emit(((ids[i] as u64 * 97 + j as u64) % n as u64) as u32);
        }
    });
    meter::aux_read(hist.last_work());
    assert!(!counts.is_empty());

    // Re-bucket the decremented neighbors as one parallel batch.
    let updates: Vec<(V, u64)> = counts.iter().map(|&(u, c)| (u, far - c as u64)).collect();
    assert!(
        updates.len() >= SEQ_BATCH,
        "batch must take the parallel path"
    );
    buckets.update_batch_distinct(&updates);

    let delta = Meter::global().snapshot().since(&before);
    let round_work = delta.aux_read + delta.aux_write;

    // The whole round must cost o(n): proportional to the peeled bucket and
    // its neighborhood (~hundreds of words here), nowhere near n. n/8 is a
    // generous ceiling that the old O(n)-per-round histogram pack alone
    // (n = 131,072 words) blows through.
    assert!(
        round_work < (n / 8) as u64,
        "tiny peeling round cost {round_work} aux words; bound {} (n = {n})",
        n / 8
    );

    // Scratch reuse: the dense call above must not have re-allocated, and
    // its per-call work must be key-proportional, not universe-proportional.
    assert_eq!(
        hist.dense_allocations(),
        1,
        "dense scratch must be allocated once per Histogram, not per call"
    );
    assert!(
        hist.last_work() < (n / 8) as u64,
        "reused-scratch histogram did {} work for {total_keys} keys",
        hist.last_work()
    );
}
