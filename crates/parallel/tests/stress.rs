//! Stress and interaction tests for the work-stealing runtime: deep
//! recursion, cross-pool installs, nested primitives, and determinism of the
//! data-parallel operations under contention.

use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn deep_unbalanced_join_tree() {
    // A lopsided recursion: one side is always tiny, forcing steal churn.
    fn go(depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = par::join(|| go(depth - 1), || 1u64);
        a + b
    }
    assert_eq!(go(2000), 2001);
}

#[test]
fn wide_fanout_of_tiny_tasks() {
    let hits = AtomicU64::new(0);
    par::par_for_grain(0, 100_000, 1, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 100_000);
}

#[test]
fn nested_parallel_primitives() {
    // A scan whose block computation itself runs parallel reductions.
    let outer: u64 = par::reduce_add(0, 64, |i| par::reduce_add(0, 1000, |j| (i * j) as u64));
    let want: u64 = (0..64u64)
        .map(|i| (0..1000u64).map(|j| i * j).sum::<u64>())
        .sum();
    assert_eq!(outer, want);
}

#[test]
fn two_pools_do_not_interfere() {
    let p1 = par::Pool::new(2);
    let p2 = par::Pool::new(2);
    let a = p1.install(|| par::reduce_add(0, 100_000, |i| i as u64));
    let b = p2.install(|| par::reduce_add(0, 100_000, |i| i as u64));
    assert_eq!(a, b);
    // Nested install: a pool-1 worker submits to pool 2 and blocks.
    let c = p1.install(|| p2.install(|| par::reduce_add(0, 1000, |i| i as u64)));
    assert_eq!(c, 499_500);
}

#[test]
fn repeated_pool_creation_and_teardown() {
    for round in 0..20 {
        let pool = par::Pool::new(1 + round % 4);
        let sum = pool.install(|| par::reduce_add(0, 10_000, |i| i as u64));
        assert_eq!(sum, 49_995_000);
        drop(pool);
    }
}

#[test]
fn sort_is_deterministic_under_parallelism() {
    let data: Vec<u64> = (0..200_000).map(|i| par::hash64(i as u64) % 1000).collect();
    let mut a = data.clone();
    let mut b = data.clone();
    par::par_sort(&mut a);
    par::par_sort(&mut b);
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn concurrent_map_contention() {
    // Every thread hammers the same handful of keys.
    let map = par::ConcurrentMap::with_capacity(64);
    par::par_for_grain(0, 1 << 16, 1, |i| {
        map.fetch_add((i % 8) as u64, 1);
    });
    for k in 0..8u64 {
        assert_eq!(map.get_counter(k), Some((1 << 16) / 8));
    }
}

#[test]
fn scan_and_pack_compose() {
    // pack_index of a predicate computed from a scan result.
    let n = 131_072;
    let mut weights: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
    let total = par::scan_add(&mut weights);
    assert_eq!(total, (0..n as u64).map(|i| i % 3).sum::<u64>());
    let idx = par::pack_index(n, |i| weights[i] % 2 == 0);
    let want: Vec<u32> = (0..n)
        .filter(|&i| weights[i] % 2 == 0)
        .map(|i| i as u32)
        .collect();
    assert_eq!(idx, want);
}

#[test]
fn panic_in_par_for_propagates_cleanly() {
    let r = std::panic::catch_unwind(|| {
        par::par_for(0, 1000, |i| {
            if i == 543 {
                panic!("expected failure");
            }
        });
    });
    assert!(r.is_err());
    // The pool must still be usable afterwards.
    assert_eq!(par::reduce_add(0, 100, |i| i as u64), 4950);
}

#[test]
fn reduce_with_noncommutative_monoid() {
    // String-length-weighted composition is associative but not commutative;
    // the reduction must respect order.
    let words = ["a", "bb", "ccc", "dddd", "ee", "f"];
    let combined = par::reduce_map(
        0,
        words.len(),
        1,
        String::new(),
        |i| words[i].to_string(),
        |a, b| format!("{a}{b}"),
    );
    assert_eq!(combined, "abbcccddddeef");
}
