//! Stress and interaction tests for the work-stealing runtime: deep
//! recursion, cross-pool installs, nested primitives, and determinism of the
//! data-parallel operations under contention.

use sage_parallel as par;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn deep_unbalanced_join_tree() {
    // A lopsided recursion: one side is always tiny, forcing steal churn.
    fn go(depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let (a, b) = par::join(|| go(depth - 1), || 1u64);
        a + b
    }
    assert_eq!(go(2000), 2001);
}

#[test]
fn wide_fanout_of_tiny_tasks() {
    let hits = AtomicU64::new(0);
    par::par_for_grain(0, 100_000, 1, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 100_000);
}

#[test]
fn nested_parallel_primitives() {
    // A scan whose block computation itself runs parallel reductions.
    let outer: u64 = par::reduce_add(0, 64, |i| par::reduce_add(0, 1000, |j| (i * j) as u64));
    let want: u64 = (0..64u64)
        .map(|i| (0..1000u64).map(|j| i * j).sum::<u64>())
        .sum();
    assert_eq!(outer, want);
}

#[test]
fn two_pools_do_not_interfere() {
    let p1 = par::Pool::new(2);
    let p2 = par::Pool::new(2);
    let a = p1.install(|| par::reduce_add(0, 100_000, |i| i as u64));
    let b = p2.install(|| par::reduce_add(0, 100_000, |i| i as u64));
    assert_eq!(a, b);
    // Nested install: a pool-1 worker submits to pool 2 and blocks.
    let c = p1.install(|| p2.install(|| par::reduce_add(0, 1000, |i| i as u64)));
    assert_eq!(c, 499_500);
}

#[test]
fn repeated_pool_creation_and_teardown() {
    for round in 0..20 {
        let pool = par::Pool::new(1 + round % 4);
        let sum = pool.install(|| par::reduce_add(0, 10_000, |i| i as u64));
        assert_eq!(sum, 49_995_000);
        drop(pool);
    }
}

#[test]
fn sort_is_deterministic_under_parallelism() {
    let data: Vec<u64> = (0..200_000).map(|i| par::hash64(i as u64) % 1000).collect();
    let mut a = data.clone();
    let mut b = data.clone();
    par::par_sort(&mut a);
    par::par_sort(&mut b);
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn concurrent_map_contention() {
    // Every thread hammers the same handful of keys.
    let map = par::ConcurrentMap::with_capacity(64);
    par::par_for_grain(0, 1 << 16, 1, |i| {
        map.fetch_add((i % 8) as u64, 1);
    });
    for k in 0..8u64 {
        assert_eq!(map.get_counter(k), Some((1 << 16) / 8));
    }
}

#[test]
fn scan_and_pack_compose() {
    // pack_index of a predicate computed from a scan result.
    let n = 131_072;
    let mut weights: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
    let total = par::scan_add(&mut weights);
    assert_eq!(total, (0..n as u64).map(|i| i % 3).sum::<u64>());
    let idx = par::pack_index(n, |i| weights[i] % 2 == 0);
    let want: Vec<u32> = (0..n)
        .filter(|&i| weights[i] % 2 == 0)
        .map(|i| i as u32)
        .collect();
    assert_eq!(idx, want);
}

#[test]
fn panic_in_par_for_propagates_cleanly() {
    let r = std::panic::catch_unwind(|| {
        par::par_for(0, 1000, |i| {
            if i == 543 {
                panic!("expected failure");
            }
        });
    });
    assert!(r.is_err());
    // The pool must still be usable afterwards.
    assert_eq!(par::reduce_add(0, 100, |i| i as u64), 4950);
}

mod deque_semantics {
    //! Contract and linearizability tests for the lock-free Chase-Lev deque
    //! and the sharded injector underneath the pool.

    use crossbeam_deque::{Injector, Steal, Worker};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn lifo_owner_pop_is_newest_first() {
        let w = Worker::new_lifo();
        for i in 0..100u32 {
            w.push(i);
        }
        for i in (0..100).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn fifo_owner_pop_is_oldest_first() {
        let w = Worker::new_fifo();
        for i in 0..100u32 {
            w.push(i);
        }
        for i in 0..100 {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_takes_the_front_for_both_flavors() {
        for w in [Worker::new_lifo(), Worker::new_fifo()] {
            let s = w.stealer();
            w.push(10u32);
            w.push(20);
            assert_eq!(s.steal(), Steal::Success(10), "thief must take oldest");
            assert_eq!(s.steal(), Steal::Success(20));
            assert_eq!(s.steal(), Steal::Empty);
        }
    }

    /// Many stealers race one popping owner; every pushed value must be
    /// consumed exactly once, across buffer growth.
    #[test]
    fn steal_pop_interleaving_is_exactly_once() {
        const N: u64 = 50_000;
        const THIEVES: usize = 4;
        let w = Worker::new_lifo();
        let stop = AtomicBool::new(false);
        let taken: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                let s = w.stealer();
                let (taken, stop) = (&taken, &stop);
                scope.spawn(move || {
                    let mut local = Vec::new();
                    // ORDERING: Acquire — pairs with the owner's Release
                    // store of `stop` so thieves quit only after it.
                    while !stop.load(Ordering::Acquire) {
                        match s.steal() {
                            Steal::Success(x) => local.push(x),
                            Steal::Empty => std::thread::yield_now(),
                            Steal::Retry => {}
                        }
                    }
                    // Drain whatever is left after the owner stopped.
                    loop {
                        match s.steal() {
                            Steal::Success(x) => local.push(x),
                            Steal::Empty => break,
                            Steal::Retry => {}
                        }
                    }
                    let mut g = taken.lock().unwrap();
                    for x in local {
                        assert!(g.insert(x), "value {x} consumed twice");
                    }
                });
            }
            let mut local = Vec::new();
            for i in 0..N {
                w.push(i);
                // Pop in bursts so owner and thieves collide on the last
                // element regularly.
                if i % 5 == 4 {
                    for _ in 0..3 {
                        if let Some(x) = w.pop() {
                            local.push(x);
                        }
                    }
                }
            }
            while let Some(x) = w.pop() {
                local.push(x);
            }
            // ORDERING: Release — pairs with the thieves' Acquire loads.
            stop.store(true, Ordering::Release);
            let mut g = taken.lock().unwrap();
            for x in local {
                assert!(g.insert(x), "value {x} consumed twice");
            }
        });
        assert_eq!(taken.lock().unwrap().len(), N as usize, "values lost");
    }

    /// Multi-producer multi-consumer injector: exactly-once delivery and
    /// per-producer FIFO order.
    #[test]
    fn injector_mpmc_exactly_once_and_per_thread_fifo() {
        const PER_PRODUCER: u64 = 20_000;
        const PRODUCERS: u64 = 3;
        const CONSUMERS: usize = 3;
        let inj = Injector::new();
        let produced_done = AtomicUsize::new(0);
        let seen: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for p in 0..PRODUCERS {
                let (inj, produced_done) = (&inj, &produced_done);
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        inj.push(p * PER_PRODUCER + i);
                    }
                    // ORDERING: Release — pairs with the consumers' Acquire
                    // load: a consumer that sees all producers done also
                    // sees every pushed item.
                    produced_done.fetch_add(1, Ordering::Release);
                });
            }
            for _ in 0..CONSUMERS {
                let (inj, produced_done, seen) = (&inj, &produced_done, &seen);
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match inj.steal() {
                            Steal::Success(x) => local.push(x),
                            Steal::Retry => {}
                            Steal::Empty => {
                                // ORDERING: Acquire — pairs with the
                                // producers' Release increments above.
                                if produced_done.load(Ordering::Acquire) == PRODUCERS as usize
                                    && inj.is_empty()
                                {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    // Per-producer FIFO: a producer's values must appear in
                    // push order within any single consumer's claim stream.
                    for p in 0..PRODUCERS {
                        let mut prev = None;
                        for &x in local.iter().filter(|&&x| x / PER_PRODUCER == p) {
                            if let Some(prev) = prev {
                                assert!(x > prev, "producer {p} reordered: {prev} before {x}");
                            }
                            prev = Some(x);
                        }
                    }
                    seen.lock().unwrap().extend(local);
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), (PRODUCERS * PER_PRODUCER) as usize);
        let unique: HashSet<u64> = seen.iter().copied().collect();
        assert_eq!(unique.len(), seen.len(), "duplicate delivery");
    }

    /// Dropping the deque mid-flight (owner gone, thieves still holding
    /// stealers, tasks still queued) must drop every remaining task exactly
    /// once — the retired-buffer list must not leak grown buffers either.
    #[test]
    fn drop_under_load_frees_everything() {
        struct Token(Arc<AtomicUsize>);
        impl Drop for Token {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        const N: usize = 10_000;
        let drops = Arc::new(AtomicUsize::new(0));
        let stolen = Arc::new(AtomicUsize::new(0));
        {
            let w = Worker::new_lifo();
            let stop = Arc::new(AtomicBool::new(false));
            let mut thieves = Vec::new();
            for _ in 0..2 {
                let s = w.stealer();
                let (stop, stolen) = (Arc::clone(&stop), Arc::clone(&stolen));
                thieves.push(std::thread::spawn(move || {
                    // ORDERING: Acquire — pairs with the owner's Release
                    // store of `stop` below.
                    while !stop.load(Ordering::Acquire) {
                        match s.steal() {
                            Steal::Success(t) => {
                                stolen.fetch_add(1, Ordering::Relaxed);
                                drop(t);
                            }
                            _ => std::hint::spin_loop(),
                        }
                    }
                }));
            }
            for _ in 0..N {
                w.push(Token(Arc::clone(&drops)));
            }
            // ORDERING: Release — pairs with the thieves' Acquire loads.
            stop.store(true, Ordering::Release);
            for t in thieves {
                t.join().unwrap();
            }
            // Worker (and its queued tasks) dropped here, stealers first.
        }
        assert_eq!(
            drops.load(Ordering::Relaxed),
            N,
            "every task dropped exactly once (stolen: {})",
            stolen.load(Ordering::Relaxed)
        );
    }
}

/// T1-vs-Tp smoke check: the lock-free deque must actually scale. With real
/// cores available the all-thread pool must at least match the 1-thread pool
/// on a compute-heavy reduction (a serializing scheduler makes it several
/// times *slower* from contention); on starved CI boxes it must stay within
/// a small constant of it. Best-of-5 timing plus ratio headroom keep the
/// check robust against sibling tests competing for the same cores.
#[test]
fn t1_vs_tp_speedup_smoke() {
    use std::time::{Duration, Instant};

    const N: usize = 1 << 21;
    fn run(pool: &par::Pool) -> (u64, Duration) {
        let mut best = Duration::MAX;
        let mut result = 0;
        for _ in 0..5 {
            let t0 = Instant::now();
            result = pool.install(|| par::reduce_add(0, N, |i| par::hash64(i as u64) >> 40));
            best = best.min(t0.elapsed());
        }
        (result, best)
    }

    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let p1 = par::Pool::new(1);
    let pn = par::Pool::new(hw);
    // A few attempts absorb transient contention from sibling tests running
    // on the same cores; a genuinely serializing scheduler fails them all.
    let mut worst = (Duration::ZERO, Duration::ZERO);
    for _ in 0..3 {
        let (r1, t1) = run(&p1);
        let (rn, tp) = run(&pn);
        assert_eq!(r1, rn, "parallel reduction changed the result");
        // 2x headroom on real cores: sibling tests in this binary may
        // saturate the machine during an attempt, but a serializing
        // scheduler (the mutexed deque this replaced) degrades Tp by far
        // more than contention noise does.
        let bound = if hw >= 4 {
            t1 * 2 + Duration::from_millis(10)
        } else {
            t1 * 3 + Duration::from_millis(20)
        };
        if tp < bound {
            return;
        }
        worst = (t1, tp);
    }
    panic!(
        "parallel pool slower than serial on {hw} threads across 3 attempts: T1={:?} Tp={:?}",
        worst.0, worst.1
    );
}

#[test]
fn reduce_with_noncommutative_monoid() {
    // String-length-weighted composition is associative but not commutative;
    // the reduction must respect order.
    let words = ["a", "bb", "ccc", "dddd", "ee", "f"];
    let combined = par::reduce_map(
        0,
        words.len(),
        1,
        String::new(),
        |i| words[i].to_string(),
        |a, b| format!("{a}{b}"),
    );
    assert_eq!(combined, "abbcccddddeef");
}
