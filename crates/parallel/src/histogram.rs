//! The histogram primitive of GBBS (§4.3.4 of the paper): given a multiset of
//! keys (vertex ids), return `(key, count)` pairs for keys that occur.
//!
//! Two implementations mirror the paper:
//! * [`histogram_sparse`] — hash-table aggregation, work proportional to the
//!   number of keys; used when the key multiset is small.
//! * [`histogram_dense`] — atomic-array accumulation followed by an `O(n)`
//!   pack; the "dense version of the histogram routine" the paper introduces
//!   for k-core, used when the number of keys exceeds a threshold `t = m/c`.
//!
//! [`Histogram::auto`] selects between them with that threshold rule.

use crate::hash_table::ConcurrentMap;
use crate::ops::{pack_index, par_for};
use std::sync::atomic::{AtomicU32, Ordering};

/// Strategy selector for histogram computation.
pub enum Histogram {
    /// Always use the hash-based sparse path.
    Sparse,
    /// Always use the dense atomic-array path.
    Dense,
    /// Use dense when `num_keys >= threshold`, else sparse.
    Auto {
        /// Switch-over point; the paper uses `t = m/c` for a small constant c.
        threshold: usize,
    },
}

impl Histogram {
    /// The paper's default policy with `t = m/16`.
    pub fn auto(m: usize) -> Self {
        Histogram::Auto {
            threshold: (m / 16).max(1),
        }
    }

    /// Count occurrences of each key produced by `keys_of(i)` for
    /// `i in 0..items`, where each item yields zero or more keys via the
    /// provided iterator closure. `universe` bounds key values.
    pub fn count<F>(
        &self,
        items: usize,
        total_keys: usize,
        universe: usize,
        keys_of: F,
    ) -> Vec<(u32, u32)>
    where
        F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
    {
        let dense = match self {
            Histogram::Sparse => false,
            Histogram::Dense => true,
            Histogram::Auto { threshold } => total_keys >= *threshold,
        };
        if dense {
            histogram_dense(items, universe, keys_of)
        } else {
            histogram_sparse(items, total_keys, keys_of)
        }
    }
}

/// Dense histogram: atomic counter per key in `0..universe`, then a parallel
/// pack of nonzero counters. Work `O(total_keys + universe)`.
pub fn histogram_dense<F>(items: usize, universe: usize, keys_of: F) -> Vec<(u32, u32)>
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let counts: Vec<AtomicU32> = (0..universe).map(|_| AtomicU32::new(0)).collect();
    par_for(0, items, |i| {
        keys_of(i, &mut |k| {
            counts[k as usize].fetch_add(1, Ordering::Relaxed);
        });
    });
    let nonzero = pack_index(universe, |k| counts[k].load(Ordering::Relaxed) > 0);
    nonzero
        .into_iter()
        .map(|k| (k, counts[k as usize].load(Ordering::Relaxed)))
        .collect()
}

/// Sparse histogram: concurrent hash-table aggregation.
/// Work `O(total_keys)` in expectation, independent of the universe size.
pub fn histogram_sparse<F>(items: usize, total_keys: usize, keys_of: F) -> Vec<(u32, u32)>
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let map = ConcurrentMap::with_capacity(total_keys.max(16));
    par_for(0, items, |i| {
        keys_of(i, &mut |k| {
            map.fetch_add(k as u64, 1);
        });
    });
    map.entries()
        .into_iter()
        .map(|(k, c)| (k as u32, c as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reference(keys: &[u32]) -> HashMap<u32, u32> {
        let mut m = HashMap::new();
        for &k in keys {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }

    fn keys_fixture(n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| (crate::rng::hash64(i as u64) % 97) as u32)
            .collect()
    }

    #[test]
    fn dense_matches_reference() {
        let keys = keys_fixture(10_000);
        let got = histogram_dense(keys.len(), 100, |i, emit| emit(keys[i]));
        let want = reference(&keys);
        assert_eq!(got.len(), want.len());
        for (k, c) in got {
            assert_eq!(want[&k], c);
        }
    }

    #[test]
    fn sparse_matches_reference() {
        let keys = keys_fixture(10_000);
        let mut got = histogram_sparse(keys.len(), keys.len(), |i, emit| emit(keys[i]));
        got.sort_unstable();
        let want = reference(&keys);
        assert_eq!(got.len(), want.len());
        for (k, c) in got {
            assert_eq!(want[&k], c);
        }
    }

    #[test]
    fn auto_switches_paths_consistently() {
        let keys = keys_fixture(5_000);
        let lo = Histogram::Auto { threshold: 1 }
            .count(keys.len(), keys.len(), 100, |i, emit| emit(keys[i]));
        let hi = Histogram::Auto {
            threshold: usize::MAX,
        }
        .count(keys.len(), keys.len(), 100, |i, emit| emit(keys[i]));
        let mut lo = lo;
        let mut hi = hi;
        lo.sort_unstable();
        hi.sort_unstable();
        assert_eq!(lo, hi);
    }

    #[test]
    fn multi_key_emission() {
        // Each item emits two keys.
        let got = histogram_dense(100, 10, |i, emit| {
            emit((i % 10) as u32);
            emit(((i + 1) % 10) as u32);
        });
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|&(_, c)| c == 20));
    }

    #[test]
    fn empty_input() {
        assert!(histogram_dense(0, 10, |_, _| {}).is_empty());
        assert!(histogram_sparse(0, 0, |_, _| {}).is_empty());
    }
}
