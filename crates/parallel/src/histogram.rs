//! The histogram primitive of GBBS (§4.3.4 of the paper): given a multiset of
//! keys (vertex ids), return `(key, count)` pairs for keys that occur.
//!
//! Two implementations mirror the paper:
//! * [`histogram_sparse`] — hash-table aggregation, work proportional to the
//!   number of keys; used when the key multiset is small.
//! * [`histogram_dense`] — atomic-array accumulation, the "dense version of
//!   the histogram routine" the paper introduces for k-core, used when the
//!   number of keys exceeds a threshold `t = m/c`.
//!
//! # Scratch reuse contract
//!
//! Peeling algorithms call the histogram once per round — 130,728 rounds for
//! k-core on Hyperlink2012 — so a dense path that allocates, zeroes, and packs
//! an `O(universe)` array per call turns an `O(|peeled neighborhood|)` round
//! into an `Θ(n)` one. [`Histogram`] therefore owns *reusable* dense scratch:
//!
//! * a counter array of `universe` atomic slots, allocated on the **first**
//!   dense call (and re-allocated only if a later call passes a larger
//!   universe — see [`Histogram::dense_allocations`]);
//! * a *touched-key list*, sized by demand (`min(total_keys, universe)`,
//!   grown geometrically): the first increment of a counter appends its key,
//!   so the result pack and the post-call reset walk only the touched keys.
//!
//! Between calls every counter is zero and the touched list is empty — the
//! reset is part of `count`, not the caller's job. Per-call work is thus
//! `O(total_keys + |distinct keys|)` after the first call, reported via
//! [`Histogram::last_work`] so PSAM-metered callers can account for it. The
//! one-shot free functions [`histogram_dense`] / [`histogram_sparse`] remain
//! for callers without a round structure; the free dense version pays the
//! `O(universe)` allocation + pack every call.
//!
//! The selection policy is the paper's threshold rule `t = m/c` (via
//! [`Histogram::auto`]).

use crate::hash_table::ConcurrentMap;
use crate::ops::{pack_index, par_for, par_map};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Strategy selector for histogram computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Always use the hash-based sparse path.
    Sparse,
    /// Always use the dense atomic-array path.
    Dense,
    /// Use dense when `num_keys >= threshold`, else sparse.
    Auto {
        /// Switch-over point; the paper uses `t = m/c` for a small constant c.
        threshold: usize,
    },
}

/// Reusable dense scratch: see the module docs for the reuse contract.
struct DenseScratch {
    /// One counter per key of the universe; all zero between calls.
    counts: Vec<AtomicU32>,
    /// Keys whose counter left zero this call, in first-touch order. Sized
    /// by demand (`min(total_keys, universe)`, grown geometrically) rather
    /// than by the universe, so the persistent footprint stays one word per
    /// universe key plus one per *observed-distinct* key — a second
    /// universe-sized array would double the DRAM the PSAM model budgets.
    touched: Vec<AtomicU32>,
    /// Number of valid entries in `touched`.
    len: AtomicUsize,
}

impl DenseScratch {
    fn new(universe: usize) -> Self {
        Self {
            // Zeroed in parallel: a serial O(universe) init on the first
            // round would undercut the depth bound the reuse contract buys.
            counts: par_map(universe, |_| AtomicU32::new(0)),
            touched: Vec::new(),
            len: AtomicUsize::new(0),
        }
    }

    /// Make room for up to `needed` touched keys this call.
    fn reserve_touched(&mut self, needed: usize) {
        if self.touched.len() < needed {
            let target = needed.next_power_of_two();
            self.touched = par_map(target, |_| AtomicU32::new(0));
        }
    }
}

/// A histogram computer with a persistent strategy and reusable dense
/// scratch (allocated on first dense use, retained across calls).
pub struct Histogram {
    mode: Mode,
    scratch: Option<DenseScratch>,
    dense_allocations: usize,
    last_work: u64,
}

impl Histogram {
    fn with_mode(mode: Mode) -> Self {
        Self {
            mode,
            scratch: None,
            dense_allocations: 0,
            last_work: 0,
        }
    }

    /// The paper's default policy with `t = m/16`.
    pub fn auto(m: usize) -> Self {
        Self::with_mode(Mode::Auto {
            threshold: (m / 16).max(1),
        })
    }

    /// Always use the hash-based sparse path.
    pub fn sparse() -> Self {
        Self::with_mode(Mode::Sparse)
    }

    /// Always use the dense atomic-array path.
    pub fn dense() -> Self {
        Self::with_mode(Mode::Dense)
    }

    /// Dense when `total_keys >= threshold`, else sparse.
    pub fn with_threshold(threshold: usize) -> Self {
        Self::with_mode(Mode::Auto {
            threshold: threshold.max(1),
        })
    }

    /// Re-aim a (possibly scratch-carrying) histogram at a new workload:
    /// resets the selection policy to [`Histogram::auto`] for `m` edges while
    /// keeping any dense scratch, so arena-recycled histograms keep their
    /// allocation history across queries.
    pub fn retarget_auto(&mut self, m: usize) {
        self.mode = Mode::Auto {
            threshold: (m / 16).max(1),
        };
    }

    /// Number of times the dense scratch has been (re-)allocated. Stays at 1
    /// across repeated calls with a non-growing universe — the property the
    /// peeling regression tests pin down.
    pub fn dense_allocations(&self) -> usize {
        self.dense_allocations
    }

    /// Auxiliary (DRAM) words touched by the most recent [`Histogram::count`]
    /// call: counter updates, touched-list traffic, and — on an allocating
    /// call only — the `O(universe)` scratch initialization. Callers that
    /// meter PSAM traffic report this as `aux` work.
    pub fn last_work(&self) -> u64 {
        self.last_work
    }

    /// Count occurrences of each key produced by `keys_of(i)` for
    /// `i in 0..items`, where each item yields zero or more keys via the
    /// provided iterator closure. `universe` bounds key values, and
    /// `total_keys` must upper-bound the number of keys emitted (both paths
    /// size scratch from it; under-reporting panics rather than corrupts).
    ///
    /// The returned pairs are in no particular order (the dense path returns
    /// first-touch order, the sparse path hash order); both paths return each
    /// occurring key exactly once.
    pub fn count<F>(
        &mut self,
        items: usize,
        total_keys: usize,
        universe: usize,
        keys_of: F,
    ) -> Vec<(u32, u32)>
    where
        F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
    {
        let dense = match self.mode {
            Mode::Sparse => false,
            Mode::Dense => true,
            Mode::Auto { threshold } => total_keys >= threshold,
        };
        if dense {
            self.count_dense(items, total_keys, universe, keys_of)
        } else {
            // The sparse path's table is sized per call (O(total_keys)), so
            // there is nothing worth retaining.
            self.last_work = 2 * total_keys as u64;
            histogram_sparse(items, total_keys, keys_of)
        }
    }

    fn count_dense<F>(
        &mut self,
        items: usize,
        total_keys: usize,
        universe: usize,
        keys_of: F,
    ) -> Vec<(u32, u32)>
    where
        F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
    {
        let grew = self
            .scratch
            .as_ref()
            .map_or(true, |s| s.counts.len() < universe);
        if grew {
            self.scratch = Some(DenseScratch::new(universe));
            self.dense_allocations += 1;
        }
        let scratch = self.scratch.as_mut().expect("scratch just ensured");
        // At most min(total_keys, universe) distinct keys can be touched;
        // `total_keys` must upper-bound the emitted keys (as in the sparse
        // path, whose table is sized the same way).
        scratch.reserve_touched(total_keys.min(universe));
        let scratch = &*scratch;
        let counts = &scratch.counts;
        let touched = &scratch.touched;
        let cursor = &scratch.len;
        par_for(0, items, |i| {
            keys_of(i, &mut |k| {
                // Exactly one thread sees the 0 -> 1 transition and appends
                // the key; every counter reaching zero again happens only in
                // the reset below, after all increments joined.
                // ORDERING: Relaxed throughout — within the phase only the
                // RMW atomicity of each counter/cursor is needed (the 0 -> 1
                // transition and the claimed append slot are unique per
                // key); cross-phase visibility of counts and appends comes
                // from the fork-join barrier (SpinLatch Release/Acquire in
                // `join`), not from these accesses.
                if counts[k as usize].fetch_add(1, Ordering::Relaxed) == 0 {
                    // ORDERING: Relaxed — the RMW claim is unique; see above.
                    let at = cursor.fetch_add(1, Ordering::Relaxed);
                    // ORDERING: Relaxed — slot `at` is exclusively ours.
                    touched[at].store(k, Ordering::Relaxed);
                }
            });
        });
        // ORDERING: Relaxed — the counting phase fully happened-before this
        // read via the fork-join barrier above.
        let t = cursor.load(Ordering::Relaxed);
        let out: Vec<(u32, u32)> = par_map(t, |i| {
            // ORDERING: Relaxed — phase-separated reads; see cursor note.
            let k = touched[i].load(Ordering::Relaxed);
            // ORDERING: Relaxed — phase-separated read; see cursor note.
            (k, counts[k as usize].load(Ordering::Relaxed))
        });
        // Reset only the touched keys so the next call starts clean without
        // an O(universe) sweep.
        par_for(0, t, |i| {
            // ORDERING: Relaxed — touched keys are distinct, so each counter
            // is reset by exactly one iteration; no cross-thread ordering.
            let k = touched[i].load(Ordering::Relaxed);
            // ORDERING: Relaxed — exclusive reset; see note above.
            counts[k as usize].store(0, Ordering::Relaxed);
        });
        // ORDERING: Relaxed — runs after the reset phase's join barrier.
        cursor.store(0, Ordering::Relaxed);
        self.last_work = total_keys as u64 + 3 * t as u64 + if grew { universe as u64 } else { 0 };
        out
    }
}

/// One-shot dense histogram: atomic counter per key in `0..universe`, then a
/// parallel pack of nonzero counters, **allocating per call** — work
/// `O(total_keys + universe)`. Round-structured callers should hold a
/// [`Histogram`] instead and reuse its scratch. Results are sorted by key.
pub fn histogram_dense<F>(items: usize, universe: usize, keys_of: F) -> Vec<(u32, u32)>
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let counts: Vec<AtomicU32> = (0..universe).map(|_| AtomicU32::new(0)).collect();
    par_for(0, items, |i| {
        keys_of(i, &mut |k| {
            // ORDERING: Relaxed — only RMW atomicity is needed during the
            // counting phase; visibility to the pack below comes from the
            // fork-join barrier, not from this access.
            counts[k as usize].fetch_add(1, Ordering::Relaxed);
        });
    });
    // ORDERING: Relaxed — all increments happened-before via the join.
    let nonzero = pack_index(universe, |k| counts[k].load(Ordering::Relaxed) > 0);
    nonzero
        .into_iter()
        // ORDERING: Relaxed — same phase separation as the pack above.
        .map(|k| (k, counts[k as usize].load(Ordering::Relaxed)))
        .collect()
}

/// Sparse histogram: concurrent hash-table aggregation.
/// Work `O(total_keys)` in expectation, independent of the universe size.
pub fn histogram_sparse<F>(items: usize, total_keys: usize, keys_of: F) -> Vec<(u32, u32)>
where
    F: Fn(usize, &mut dyn FnMut(u32)) + Sync,
{
    let map = ConcurrentMap::with_capacity(total_keys.max(16));
    par_for(0, items, |i| {
        keys_of(i, &mut |k| {
            map.fetch_add(k as u64, 1);
        });
    });
    map.entries()
        .into_iter()
        .map(|(k, c)| (k as u32, c as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn reference(keys: &[u32]) -> HashMap<u32, u32> {
        let mut m = HashMap::new();
        for &k in keys {
            *m.entry(k).or_insert(0) += 1;
        }
        m
    }

    fn keys_fixture(n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| (crate::rng::hash64(i as u64) % 97) as u32)
            .collect()
    }

    fn check_against_reference(keys: &[u32], got: &[(u32, u32)]) {
        let want = reference(keys);
        assert_eq!(got.len(), want.len());
        for &(k, c) in got {
            assert_eq!(want[&k], c);
        }
    }

    #[test]
    fn dense_matches_reference() {
        let keys = keys_fixture(10_000);
        let got = histogram_dense(keys.len(), 100, |i, emit| emit(keys[i]));
        check_against_reference(&keys, &got);
    }

    #[test]
    fn sparse_matches_reference() {
        let keys = keys_fixture(10_000);
        let got = histogram_sparse(keys.len(), keys.len(), |i, emit| emit(keys[i]));
        check_against_reference(&keys, &got);
    }

    #[test]
    fn reusable_dense_matches_reference() {
        let keys = keys_fixture(10_000);
        let mut h = Histogram::dense();
        let got = h.count(keys.len(), keys.len(), 100, |i, emit| emit(keys[i]));
        check_against_reference(&keys, &got);
    }

    #[test]
    fn auto_switches_paths_consistently() {
        let keys = keys_fixture(5_000);
        let mut lo = Histogram::with_threshold(1)
            .count(keys.len(), keys.len(), 100, |i, emit| emit(keys[i]));
        let mut hi =
            Histogram::with_threshold(usize::MAX)
                .count(keys.len(), keys.len(), 100, |i, emit| emit(keys[i]));
        lo.sort_unstable();
        hi.sort_unstable();
        assert_eq!(lo, hi);
    }

    #[test]
    fn dense_scratch_allocated_once_across_rounds() {
        // The reuse contract: repeated rounds over the same universe must not
        // re-allocate, and each round must be exact despite the shared
        // counters (i.e., the per-touched-key reset works).
        let mut h = Histogram::dense();
        let universe = 50_000;
        for round in 0..20u64 {
            let keys: Vec<u32> = (0..64)
                .map(|i| (crate::rng::hash64(round * 1000 + i) % universe as u64) as u32)
                .collect();
            let got = h.count(keys.len(), keys.len(), universe, |i, emit| emit(keys[i]));
            check_against_reference(&keys, &got);
            assert_eq!(h.dense_allocations(), 1, "round {round} re-allocated");
        }
    }

    #[test]
    fn dense_work_is_key_proportional_after_first_call() {
        let mut h = Histogram::dense();
        let universe = 100_000usize;
        let warm: Vec<u32> = (0..universe as u32).step_by(7).collect();
        let _ = h.count(warm.len(), warm.len(), universe, |i, emit| emit(warm[i]));
        assert!(
            h.last_work() >= universe as u64,
            "first call pays the alloc"
        );
        let keys: Vec<u32> = (0..128u32).collect();
        let _ = h.count(keys.len(), keys.len(), universe, |i, emit| emit(keys[i]));
        assert!(
            h.last_work() <= 8 * keys.len() as u64,
            "reused-scratch work {} not O(|keys|)",
            h.last_work()
        );
        assert_eq!(h.dense_allocations(), 1);
    }

    #[test]
    fn dense_scratch_grows_for_larger_universe() {
        let mut h = Histogram::dense();
        let _ = h.count(4, 4, 100, |i, emit| emit(i as u32));
        let _ = h.count(4, 4, 1_000, |i, emit| emit(900 + i as u32));
        assert_eq!(h.dense_allocations(), 2);
        // And a shrink does not re-allocate.
        let got = h.count(4, 4, 50, |i, emit| emit(i as u32));
        assert_eq!(h.dense_allocations(), 2);
        assert_eq!(got.len(), 4);
    }

    #[test]
    fn multi_key_emission() {
        // Each item emits two keys.
        let got = histogram_dense(100, 10, |i, emit| {
            emit((i % 10) as u32);
            emit(((i + 1) % 10) as u32);
        });
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|&(_, c)| c == 20));
    }

    #[test]
    fn empty_input() {
        assert!(histogram_dense(0, 10, |_, _| {}).is_empty());
        assert!(histogram_sparse(0, 0, |_, _| {}).is_empty());
        assert!(Histogram::dense().count(0, 0, 10, |_, _| {}).is_empty());
    }
}
