//! Completion latches used to signal that a forked job has finished.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};

/// A latch that is set exactly once when the guarded job completes.
pub(crate) trait Latch {
    /// Mark the latch as set. Must be called at most once.
    fn set(&self);
}

/// A latch probed by a worker thread that keeps stealing while it waits.
///
/// The waiting worker never parks on this latch; it stays busy executing other
/// jobs, which is what makes the Cilk-style `join` efficient.
#[derive(Default)]
pub(crate) struct SpinLatch {
    set: AtomicBool,
}

impl SpinLatch {
    pub(crate) fn new() -> Self {
        Self {
            set: AtomicBool::new(false),
        }
    }

    #[inline]
    pub(crate) fn probe(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release in `set`; a thread that
        // observes the latch set also observes the job's result write, which
        // happens-before `set` on the executor.
        self.set.load(Ordering::Acquire)
    }
}

impl Latch for SpinLatch {
    #[inline]
    fn set(&self) {
        // ORDERING: Release — publishes every write the executing job made
        // (in particular the result slot) to whoever probes the latch.
        self.set.store(true, Ordering::Release);
    }
}

/// A blocking latch for threads outside the pool: the submitting thread parks
/// on a condvar until a worker completes the injected job.
pub(crate) struct LockLatch {
    done: Mutex<bool>,
    cond: Condvar,
}

impl LockLatch {
    pub(crate) fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn wait(&self) {
        let mut done = self.done.lock();
        while !*done {
            self.cond.wait(&mut done);
        }
    }
}

impl Latch for LockLatch {
    fn set(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.cond.notify_all();
    }
}

/// A latch that fires when a counter of outstanding jobs reaches zero.
///
/// Starts at one (the owning scope body); every spawned job adds one and
/// removes it on completion. Supports both waiting styles: worker threads
/// probe [`CountLatch::probe`] while stealing, external threads park on
/// [`CountLatch::wait`].
pub(crate) struct CountLatch {
    count: std::sync::atomic::AtomicUsize,
    done: SpinLatch,
    lock: Mutex<()>,
    cond: Condvar,
}

impl CountLatch {
    pub(crate) fn new() -> Self {
        Self {
            count: std::sync::atomic::AtomicUsize::new(1),
            done: SpinLatch::new(),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn increment(&self) {
        // ORDERING: Relaxed — an increment always races ahead of its own
        // decrement (the spawner holds a count > 0 while spawning), so the
        // counter can never be observed at zero spuriously; no other data is
        // published through it.
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Remove one outstanding job; the last removal fires the latch.
    pub(crate) fn decrement(&self) {
        // ORDERING: AcqRel — the Release half publishes this job's writes to
        // whoever fires the latch; the Acquire half makes the final
        // decrementer see every *other* job's writes before `done.set()`
        // hands completion to the scope owner.
        if self.count.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done.set();
            // Pair with `wait`: taking the lock before notifying means a
            // waiter that observed `probe() == false` under the lock cannot
            // miss this notification.
            let _g = self.lock.lock();
            self.cond.notify_all();
        }
    }

    #[inline]
    pub(crate) fn probe(&self) -> bool {
        self.done.probe()
    }

    /// Park until the counter reaches zero (for threads outside the pool).
    pub(crate) fn wait(&self) {
        let mut g = self.lock.lock();
        while !self.probe() {
            self.cond.wait(&mut g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_latch_set_probe() {
        let l = SpinLatch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn lock_latch_cross_thread() {
        let l = Arc::new(LockLatch::new());
        let l2 = Arc::clone(&l);
        let h = std::thread::spawn(move || l2.set());
        l.wait();
        h.join().unwrap();
    }

    #[test]
    fn count_latch_fires_at_zero() {
        let l = Arc::new(CountLatch::new());
        for _ in 0..8 {
            l.increment();
        }
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.decrement())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!l.probe(), "body count still outstanding");
        l.decrement();
        assert!(l.probe());
        l.wait(); // must not block
    }
}
