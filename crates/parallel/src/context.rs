//! Task-inherited context slots: the propagation substrate for scoped
//! runtimes.
//!
//! A *context* is a tiny array of optional, reference-counted values that is
//! captured when a job is forked and re-installed on whichever worker thread
//! ends up executing it. This is what lets a per-query facility — the
//! [`sage_nvram` meter scope](https://docs.rs/) or a per-query scratch arena —
//! follow a computation across `join`/`par_for`/[`crate::Pool::scope`]
//! boundaries without threading a handle through every call site.
//!
//! The slots are opaque to this crate: each holds an `Arc<dyn Any + Send +
//! Sync>` that client crates downcast to their own type. Slot indices are a
//! workspace-level convention declared here so clients cannot collide:
//!
//! * [`SLOT_METER`] — claimed by `sage-nvram`'s `MeterScope` (per-query PSAM
//!   traffic attribution);
//! * [`SLOT_ARENA`] — claimed by `sage-core`'s `QueryArena` (per-query
//!   scratch pools).
//!
//! # Lifetime and cost model
//!
//! Installation is strictly scoped: [`with_slot`] installs a value for the
//! duration of a closure and restores the previous context on the way out
//! (including on unwind), so contexts always nest LIFO. Forked jobs *clone*
//! the `Arc`s into the job itself (`capture`), which keeps every referenced
//! value alive for as long as any outstanding job can still touch it — even a
//! heap-spawned scope job that outlives the `with_slot` frame that forked it.
//! A fork with an empty context costs two `Option::None` copies; reading an
//! empty context is a thread-local load and a null check.

use std::any::Any;
use std::cell::Cell;
use std::ptr;
use std::sync::Arc;

/// Slot claimed by `sage-nvram`'s `MeterScope` (per-query traffic meter).
pub const SLOT_METER: usize = 0;

/// Slot claimed by `sage-core`'s `QueryArena` (per-query scratch pools).
pub const SLOT_ARENA: usize = 1;

/// Number of context slots carried by every forked job.
pub const SLOTS: usize = 2;

/// One captured context: the values a job inherits from its forking thread.
pub(crate) type Context = [Option<Arc<dyn Any + Send + Sync>>; SLOTS];

thread_local! {
    /// The context of the task currently executing on this thread.
    ///
    /// Points either at a `with_slot` stack frame or at the `Context` owned
    /// by the currently executing job; both strictly outlive the window in
    /// which this pointer is observable (the pointer is reset before the
    /// frame or the job is released), so dereferencing it is sound.
    static CURRENT: Cell<*const Context> = const { Cell::new(ptr::null()) };
}

/// An empty context (no slots installed).
pub(crate) fn empty() -> Context {
    [const { None }; SLOTS]
}

/// Clone the current thread's context for a job about to be forked.
pub(crate) fn capture() -> Context {
    let p = CURRENT.with(|c| c.get());
    if p.is_null() {
        empty()
    } else {
        // SAFETY: see `CURRENT` — the pointee outlives its installation.
        unsafe { (*p).clone() }
    }
}

/// Install `ctx` as the current context, returning the previous pointer.
/// The caller must guarantee `ctx` stays alive until the matching [`exit`].
pub(crate) fn enter(ctx: &Context) -> *const Context {
    CURRENT.with(|c| c.replace(ctx as *const Context))
}

/// Restore a context pointer previously returned by [`enter`].
pub(crate) fn exit(prev: *const Context) {
    CURRENT.with(|c| c.set(prev));
}

/// Restores the previous context on drop, so `with_slot` is unwind-safe.
struct Restore(*const Context);

impl Drop for Restore {
    fn drop(&mut self) {
        exit(self.0);
    }
}

/// Run `f` with `value` installed in `slot` of the current context.
///
/// Jobs forked inside `f` (via `join`, the `par_*` loops, or scope spawns)
/// inherit the value; it is kept alive by `Arc` clones inside each job, so it
/// remains valid even for jobs that finish after `with_slot` returns. The
/// previous context is restored when `f` returns or unwinds — installations
/// therefore always nest and cannot dangle.
pub fn with_slot<R>(slot: usize, value: Arc<dyn Any + Send + Sync>, f: impl FnOnce() -> R) -> R {
    assert!(slot < SLOTS, "context slot {slot} out of range");
    let mut ctx = capture();
    ctx[slot] = Some(value);
    let _restore = Restore(enter(&ctx));
    f()
}

/// Inspect `slot` of the current context; `f` receives `None` when nothing is
/// installed. Clients downcast the value to their own concrete type.
pub fn with<R>(slot: usize, f: impl FnOnce(Option<&(dyn Any + Send + Sync)>) -> R) -> R {
    assert!(slot < SLOTS, "context slot {slot} out of range");
    let p = CURRENT.with(|c| c.get());
    if p.is_null() {
        f(None)
    } else {
        // SAFETY: see `CURRENT` — the pointee outlives its installation.
        f(unsafe { &(*p)[slot] }.as_deref())
    }
}

/// Downcast helper: fetch a cloned `Arc<T>` from `slot`, if one of that exact
/// type is installed.
pub fn get<T: Any + Send + Sync>(slot: usize) -> Option<Arc<T>> {
    assert!(slot < SLOTS, "context slot {slot} out of range");
    let p = CURRENT.with(|c| c.get());
    if p.is_null() {
        return None;
    }
    // SAFETY: see `CURRENT` — the pointee outlives its installation.
    let arc = unsafe { (*p)[slot].clone() }?;
    arc.downcast::<T>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::join;

    #[test]
    fn empty_context_reads_none() {
        with(SLOT_METER, |v| assert!(v.is_none()));
        assert!(get::<u64>(SLOT_ARENA).is_none());
    }

    #[test]
    fn with_slot_scopes_and_restores() {
        let value: Arc<u64> = Arc::new(17);
        with_slot(SLOT_METER, value, || {
            assert_eq!(*get::<u64>(SLOT_METER).unwrap(), 17);
            assert!(get::<u64>(SLOT_ARENA).is_none());
        });
        assert!(get::<u64>(SLOT_METER).is_none());
    }

    #[test]
    fn nested_slots_compose_and_shadow() {
        with_slot(SLOT_METER, Arc::new(1u64), || {
            with_slot(SLOT_ARENA, Arc::new(2u64), || {
                assert_eq!(*get::<u64>(SLOT_METER).unwrap(), 1);
                assert_eq!(*get::<u64>(SLOT_ARENA).unwrap(), 2);
                // Shadow the meter slot; innermost wins.
                with_slot(SLOT_METER, Arc::new(3u64), || {
                    assert_eq!(*get::<u64>(SLOT_METER).unwrap(), 3);
                    assert_eq!(*get::<u64>(SLOT_ARENA).unwrap(), 2);
                });
                assert_eq!(*get::<u64>(SLOT_METER).unwrap(), 1);
            });
            assert!(get::<u64>(SLOT_ARENA).is_none());
        });
    }

    #[test]
    fn restored_on_unwind() {
        let r = std::panic::catch_unwind(|| {
            with_slot(SLOT_METER, Arc::new(9u64), || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(get::<u64>(SLOT_METER).is_none());
    }

    #[test]
    fn context_propagates_across_join() {
        with_slot(SLOT_METER, Arc::new(42u64), || {
            let (a, b) = join(
                || get::<u64>(SLOT_METER).map(|v| *v),
                || get::<u64>(SLOT_METER).map(|v| *v),
            );
            assert_eq!(a, Some(42));
            assert_eq!(b, Some(42));
        });
    }

    #[test]
    fn context_propagates_into_deep_parallel_loops() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let misses = AtomicUsize::new(0);
        with_slot(SLOT_ARENA, Arc::new(7u64), || {
            crate::ops::par_for(0, 10_000, |_| {
                if get::<u64>(SLOT_ARENA).map(|v| *v) != Some(7) {
                    misses.fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert_eq!(misses.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn value_outlives_installation_via_job_clones() {
        let value = Arc::new(11u64);
        let weak = Arc::downgrade(&value);
        with_slot(SLOT_METER, value, || {});
        // No jobs hold it any more: the only strong ref was the installation.
        assert!(weak.upgrade().is_none());
    }
}
