//! Type-erased job representation passed through the work-stealing deques.
//!
//! A [`StackJob`] lives on the stack of the thread that called `join`; that
//! frame is guaranteed to outlive the job because `join` does not return until
//! the job's latch is set. The deques therefore only carry thin [`JobRef`]
//! pointers, exactly like Cilk's spawn frames.

use crate::context;
use crate::latch::Latch;
use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

/// A pointer to a job plus its monomorphized execute function.
#[derive(Clone, Copy)]
pub(crate) struct JobRef {
    data: *const (),
    // SAFETY: the pointee contract of this erased entry point is documented
    // on `JobRef::execute`; it is only ever built by `as_job_ref` /
    // `into_job_ref` with a matching `data`.
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the referenced StackJob is
// kept alive by the joining thread until its latch is set.
unsafe impl Send for JobRef {}
// SAFETY: same argument as Send above — the ref is a token for a one-shot
// execution, not a shared-state handle.
unsafe impl Sync for JobRef {}

impl JobRef {
    /// Execute the job. May be called from any thread.
    ///
    /// # Safety
    ///
    /// Must be called exactly once per job: the execute functions take the
    /// closure out of its slot (stack jobs) or reclaim the box (heap jobs).
    #[inline]
    pub(crate) unsafe fn execute(self) {
        // SAFETY: `data` was created from a live job by `as_job_ref` /
        // `into_job_ref` together with the matching monomorphized
        // `execute_fn`; single-execution is the caller's obligation.
        unsafe { (self.execute_fn)(self.data) }
    }

    /// Identity of the underlying job, used to recognise our own job when
    /// popping it back off the local deque.
    #[inline]
    pub(crate) fn id(&self) -> *const () {
        self.data
    }
}

/// Result slot of a forked job: panics on the stealing thread are captured and
/// re-thrown on the joining thread, matching `std::thread::join` semantics.
pub(crate) enum JobResult<R> {
    Pending,
    Ok(R),
    Panicked(Box<dyn Any + Send>),
}

/// A job allocated in the caller's stack frame.
pub(crate) struct StackJob<L: Latch, F, R> {
    latch: L,
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    /// Context captured at fork time and re-installed around execution, so
    /// scoped runtime state (meter scopes, query arenas) follows the job onto
    /// whichever worker steals it. The job owns `Arc` clones of the values,
    /// keeping them alive for its whole lifetime.
    ctx: context::Context,
}

impl<L: Latch, F, R> StackJob<L, F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(latch: L, func: F) -> Self {
        Self {
            latch,
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            ctx: context::capture(),
        }
    }

    pub(crate) fn latch(&self) -> &L {
        &self.latch
    }

    /// Create the type-erased reference pushed onto a deque.
    ///
    /// SAFETY: the caller must guarantee `self` outlives any use of the
    /// returned `JobRef` and that the job is executed at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        /// SAFETY: `this` points at a live `StackJob<L, F, R>`
        /// (guaranteed by `as_job_ref`'s own contract) and runs only once.
        unsafe fn execute<L: Latch, F, R>(this: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
        {
            // SAFETY: `this` is the erased pointer made below from a live
            // StackJob whose frame the joiner keeps alive until the latch.
            let job = unsafe { &*(this as *const StackJob<L, F, R>) };
            // SAFETY: only the single executor touches `func`; the joiner
            // does not read it, so the UnsafeCell access is unaliased.
            let func = unsafe { (*job.func.get()).take().expect("job executed twice") };
            // Install the captured context for the duration of the closure
            // and restore the executor's own context before the latch is set
            // (after the latch, the joiner may free this job's frame).
            let prev = context::enter(&job.ctx);
            let res = panic::catch_unwind(AssertUnwindSafe(func));
            context::exit(prev);
            // SAFETY: the result cell is written only here, before the latch
            // is set; the joiner reads it only after observing the latch.
            unsafe {
                *job.result.get() = match res {
                    Ok(v) => JobResult::Ok(v),
                    Err(p) => JobResult::Panicked(p),
                };
            }
            job.latch.set();
        }
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: execute::<L, F, R>,
        }
    }

    /// Run the job inline on the current thread (it was popped back before
    /// being stolen).
    ///
    /// # Safety
    ///
    /// Same contract as [`JobRef::execute`]: at most once per job.
    pub(crate) unsafe fn run_inline(&self) {
        // SAFETY: `self` is trivially alive for this call; once-only is the
        // caller's obligation, forwarded to `execute`.
        unsafe { self.as_job_ref().execute() }
    }

    /// Take the result after the latch has been observed set.
    ///
    /// # Safety
    ///
    /// Call only after this job's latch has been observed set; the latch
    /// is what serializes the executor's write with this read.
    pub(crate) unsafe fn take_result(&self) -> R {
        // SAFETY: per the contract above, the executor has finished its
        // write to the cell and will never touch it again.
        match std::mem::replace(unsafe { &mut *self.result.get() }, JobResult::Pending) {
            JobResult::Ok(v) => v,
            JobResult::Panicked(p) => panic::resume_unwind(p),
            JobResult::Pending => unreachable!("job latch set without a result"),
        }
    }
}

// SAFETY: access to the UnsafeCells is serialized by the latch protocol: the
// executor writes before setting the latch, the joiner reads after probing it.
unsafe impl<L: Latch + Sync, F: Send, R: Send> Sync for StackJob<L, F, R> {}

/// A heap-allocated fire-and-forget job, used by [`crate::Pool::scope`]
/// spawns whose closures outlive the spawning stack frame. The box is
/// reclaimed by whichever thread executes the job.
pub(crate) struct HeapJob<F: FnOnce() + Send> {
    func: F,
    ctx: context::Context,
}

impl<F: FnOnce() + Send> HeapJob<F> {
    pub(crate) fn new(func: F) -> Box<Self> {
        Box::new(Self {
            func,
            ctx: context::capture(),
        })
    }

    /// Erase the box into a [`JobRef`].
    ///
    /// SAFETY: the caller must guarantee the job is executed exactly once
    /// (leaks otherwise) and that everything the closure borrows outlives the
    /// execution — `Pool::scope` enforces the latter by not returning until
    /// every spawned job has run.
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        /// SAFETY: `this` came from `Box::into_raw` below and is
        /// passed to at most one invocation.
        unsafe fn execute<F: FnOnce() + Send>(this: *const ()) {
            // SAFETY: ownership transfers to the executing thread; the ref
            // was created from `Box::into_raw` and is executed once.
            let job = unsafe { Box::from_raw(this as *mut HeapJob<F>) };
            let prev = context::enter(&job.ctx);
            // The closure is responsible for its own panic containment
            // (scope spawns wrap it in `catch_unwind`); an escaping panic
            // would unwind into the worker loop and abort.
            (job.func)();
            context::exit(prev);
        }
        JobRef {
            data: Box::into_raw(self) as *const (),
            execute_fn: execute::<F>,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latch::SpinLatch;

    #[test]
    fn stack_job_roundtrip() {
        let job = StackJob::<SpinLatch, _, _>::new(SpinLatch::new(), || 7usize);
        // SAFETY: run exactly once; take_result only after the latch probe.
        unsafe {
            job.run_inline();
            assert!(job.latch().probe());
            assert_eq!(job.take_result(), 7);
        }
    }

    #[test]
    fn stack_job_captures_panic() {
        let job = StackJob::<SpinLatch, _, usize>::new(SpinLatch::new(), || panic!("boom"));
        // SAFETY: run exactly once; latch probed before take_result below.
        unsafe {
            job.run_inline();
            assert!(job.latch().probe());
        }
        // SAFETY: the latch was probed set above, so the result is ready.
        let caught = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
            job.take_result();
        }));
        assert!(caught.is_err());
    }
}
