//! Deterministic, splittable randomness for parallel algorithms.
//!
//! The paper's randomized algorithms (LDD shifts, MIS/matching priorities,
//! RMAT generation) need per-element random values that are identical across
//! thread counts. We use SplitMix64 as a stateless hash: `hash64(seed ^ i)`
//! gives element `i` of an i.i.d.-looking stream without any shared state.

/// Finalizer of the SplitMix64 generator; a high-quality 64-bit mixer.
#[inline]
pub fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hash of an ordered pair; used for per-edge priorities.
#[inline]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(hash64(a).wrapping_add(b).wrapping_mul(0x9E3779B97F4A7C15))
}

/// A tiny sequential PRNG with the SplitMix64 update rule.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction; the same seed yields the same stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // bounds used here (graph sizes far below 2^48).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A sample from the exponential distribution with rate `beta`
    /// (used by the Miller-Peng-Xu LDD shifts, §4.3.2).
    #[inline]
    pub fn next_exp(&mut self, beta: f64) -> f64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -(u.ln()) / beta
    }
}

/// Uniform double in `[0,1)` derived from a hash — the stateless counterpart
/// of [`SplitMix64::next_f64`].
#[inline]
pub fn hash_f64(seed: u64, i: u64) -> f64 {
    (hash64(seed ^ i.wrapping_mul(0xD1B54A32D192ED03)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seeded Fisher-Yates permutation of `0..n`.
///
/// Sequential (`O(n)`): permutations are only materialized for moderate `n`
/// (priority orders); per-element priorities in hot paths use [`hash64`].
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SplitMix64::new(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_deterministic_and_spreads() {
        assert_eq!(hash64(42), hash64(42));
        assert_ne!(hash64(42), hash64(43));
        // Low bits should differ across consecutive inputs.
        let bits: std::collections::HashSet<u64> = (0..64).map(|i| hash64(i) & 0xFF).collect();
        assert!(bits.len() > 32);
    }

    #[test]
    fn next_below_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn next_f64_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_roughly_one_over_beta() {
        let mut rng = SplitMix64::new(11);
        let beta = 0.5;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_exp(beta)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / beta).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let p = random_permutation(1000, 5);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Seeded determinism
        assert_eq!(p, random_permutation(1000, 5));
        assert_ne!(p, random_permutation(1000, 6));
    }
}
