//! Data-parallel building blocks: loops, maps, reductions, prefix sums, and
//! filter/pack — the primitives defined in §2 of the paper.
//!
//! All of them are built on binary [`join`] recursion, so their depth is
//! `O(log n)` (times the grain) as assumed by the PSAM analyses.

use crate::pool::join;
use crate::DEFAULT_GRAIN;

/// A raw pointer wrapper that asserts cross-thread shareability.
///
/// Used to scatter results into disjoint slots of a pre-sized buffer from a
/// parallel loop. The caller must guarantee that distinct iterations write
/// disjoint locations.
pub struct SendPtr<T>(pub *mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

// SAFETY: SendPtr is a capability to write disjoint slots from multiple
// threads; the disjointness obligation is on every construction site.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same argument as Send — shared copies still target disjoint slots.
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Pointer to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation this pointer was derived from,
    /// and no two threads may touch the same slot.
    #[inline]
    pub unsafe fn add(self, i: usize) -> *mut T {
        // SAFETY: in-bounds per this method's own `# Safety` contract.
        unsafe { self.0.add(i) }
    }
}

/// Grain used when the caller passes `grain == 0`: splits the range into
/// roughly `8 x num_threads` pieces, bounded below to amortize task overhead.
#[inline]
fn auto_grain(n: usize) -> usize {
    let pieces = 8 * crate::pool::num_threads();
    (n / pieces.max(1)).clamp(1, DEFAULT_GRAIN)
}

/// Parallel loop over `lo..hi` with an explicit sequential grain.
pub fn par_for_grain<F>(lo: usize, hi: usize, grain: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if lo >= hi {
        return;
    }
    let grain = if grain == 0 {
        auto_grain(hi - lo)
    } else {
        grain
    };
    fn go<F: Fn(usize) + Sync>(lo: usize, hi: usize, grain: usize, f: &F) {
        if hi - lo <= grain {
            for i in lo..hi {
                f(i);
            }
        } else {
            let mid = lo + (hi - lo) / 2;
            join(|| go(lo, mid, grain, f), || go(mid, hi, grain, f));
        }
    }
    go(lo, hi, grain, &f);
}

/// Parallel loop over `lo..hi` with automatic grain selection.
#[inline]
pub fn par_for<F>(lo: usize, hi: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_for_grain(lo, hi, 0, f)
}

/// Parallel in-place update of a mutable slice: `f(i, &mut slice[i])`.
pub fn par_for_slices<T: Send, F>(slice: &mut [T], f: F)
where
    F: Fn(usize, &mut T) + Sync,
{
    let ptr = SendPtr(slice.as_mut_ptr());
    par_for(0, slice.len(), |i| {
        // SAFETY: iterations touch disjoint indices of `slice`.
        let slot = unsafe { &mut *ptr.add(i) };
        f(i, slot);
    });
}

/// Build a `Vec` of length `n` where element `i` is `f(i)`, in parallel.
pub fn par_map_grain<T: Send, F>(n: usize, grain: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(n);
    let ptr = SendPtr(out.as_mut_ptr());
    par_for_grain(0, n, grain, |i| {
        // SAFETY: each index is written exactly once into the reserved buffer.
        unsafe { ptr.add(i).write(f(i)) };
    });
    // SAFETY: all n slots were initialized above.
    unsafe { out.set_len(n) };
    out
}

/// [`par_map_grain`] with automatic grain.
#[inline]
pub fn par_map<T: Send, F>(n: usize, f: F) -> Vec<T>
where
    F: Fn(usize) -> T + Sync,
{
    par_map_grain(n, 0, f)
}

/// Fill a slice with copies of `value` in parallel.
pub fn par_fill<T: Copy + Send + Sync>(slice: &mut [T], value: T) {
    par_for_slices(slice, |_, slot| *slot = value);
}

/// Copy `src` into `dst` in parallel. Panics if lengths differ.
pub fn par_copy<T: Copy + Send + Sync>(dst: &mut [T], src: &[T]) {
    assert_eq!(dst.len(), src.len(), "par_copy length mismatch");
    let ptr = SendPtr(dst.as_mut_ptr());
    // SAFETY: `i` ranges over `dst`'s indices (lengths asserted equal) and
    // each index is written by exactly one iteration.
    par_for(0, src.len(), |i| unsafe { ptr.add(i).write(src[i]) });
}

/// Generic parallel reduction over `lo..hi`: combines `map(i)` with `comb`.
///
/// `comb` must be associative; `id` its identity.
pub fn reduce_map<T, M, C>(lo: usize, hi: usize, grain: usize, id: T, map: M, comb: C) -> T
where
    T: Send + Sync + Clone,
    M: Fn(usize) -> T + Sync,
    C: Fn(T, T) -> T + Sync + Send,
{
    if lo >= hi {
        return id;
    }
    let grain = if grain == 0 {
        auto_grain(hi - lo)
    } else {
        grain
    };
    fn go<T, M, C>(lo: usize, hi: usize, grain: usize, id: &T, map: &M, comb: &C) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize) -> T + Sync,
        C: Fn(T, T) -> T + Sync + Send,
    {
        if hi - lo <= grain {
            let mut acc = id.clone();
            for i in lo..hi {
                acc = comb(acc, map(i));
            }
            acc
        } else {
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(
                || go(lo, mid, grain, id, map, comb),
                || go(mid, hi, grain, id, map, comb),
            );
            comb(a, b)
        }
    }
    go(lo, hi, grain, &id, &map, &comb)
}

/// Parallel sum of `map(i)` over `lo..hi`.
#[inline]
pub fn reduce_add<M>(lo: usize, hi: usize, map: M) -> u64
where
    M: Fn(usize) -> u64 + Sync,
{
    reduce_map(lo, hi, 0, 0u64, map, |a, b| a + b)
}

/// Parallel maximum of `map(i)`; returns `id` for an empty range.
#[inline]
pub fn reduce_max<T, M>(lo: usize, hi: usize, id: T, map: M) -> T
where
    T: Send + Sync + Clone + PartialOrd,
    M: Fn(usize) -> T + Sync,
{
    reduce_map(lo, hi, 0, id, map, |a, b| if b > a { b } else { a })
}

/// Parallel minimum of `map(i)`; returns `id` for an empty range.
#[inline]
pub fn reduce_min<T, M>(lo: usize, hi: usize, id: T, map: M) -> T
where
    T: Send + Sync + Clone + PartialOrd,
    M: Fn(usize) -> T + Sync,
{
    reduce_map(lo, hi, 0, id, map, |a, b| if b < a { b } else { a })
}

/// Parallel bitwise-OR reduction of `map(i)` over `lo..hi`.
///
/// The workhorse of bit-parallel multi-source traversals: OR-ing per-vertex
/// `u64` source masks answers "which sources touched anything in this range"
/// in one `O(n)` pass with `O(log n)` depth.
#[inline]
pub fn reduce_or<M>(lo: usize, hi: usize, map: M) -> u64
where
    M: Fn(usize) -> u64 + Sync,
{
    reduce_map(lo, hi, 0, 0u64, map, |a, b| a | b)
}

/// Parallel population count over a slice of `u64` masks: the total number of
/// set bits. Used to apportion batched-traversal costs by touched-word
/// shares (each set bit of a visited-mask is one source reaching one vertex).
#[inline]
pub fn count_ones(masks: &[u64]) -> u64 {
    reduce_add(0, masks.len(), |i| masks[i].count_ones() as u64)
}

/// Per-bit population counts over a slice of `u64` masks: `out[b]` is the
/// number of mask words with bit `b` set. One pass over the data, combining
/// 64-counter partial histograms up the reduction tree — the share vector a
/// batched multi-source traversal splits its metered cost by.
pub fn count_ones_per_bit(masks: &[u64]) -> [u64; 64] {
    #[derive(Clone)]
    struct Counts([u64; 64]);
    let id = Counts([0u64; 64]);
    let combined = reduce_map(
        0,
        masks.len(),
        0,
        id,
        |i| {
            let mut c = [0u64; 64];
            let mut m = masks[i];
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                c[b] += 1;
                m &= m - 1;
            }
            Counts(c)
        },
        |mut a, b| {
            for (x, y) in a.0.iter_mut().zip(b.0.iter()) {
                *x += y;
            }
            a
        },
    );
    combined.0
}

/// Exclusive prefix sum with a generic associative operator.
///
/// Replaces `data[i]` with `id ⊕ data[0] ⊕ … ⊕ data[i-1]` and returns the
/// total, exactly the Scan of §2. Two-pass blocked implementation:
/// `O(n)` work, `O(log n)` depth.
pub fn scan_with<T, F>(data: &mut [T], id: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    let n = data.len();
    if n == 0 {
        return id;
    }
    let block = DEFAULT_GRAIN.max(n.div_ceil(8 * crate::pool::num_threads()).max(1));
    let nblocks = n.div_ceil(block);
    if nblocks <= 1 {
        let mut acc = id;
        for x in data.iter_mut() {
            let next = op(acc, *x);
            *x = acc;
            acc = next;
        }
        return acc;
    }
    // Pass 1: per-block totals.
    let mut sums: Vec<T> = par_map(nblocks, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let mut acc = id;
        for x in &data[lo..hi] {
            acc = op(acc, *x);
        }
        acc
    });
    // Sequential scan over block totals (few blocks).
    let mut acc = id;
    for s in sums.iter_mut() {
        let next = op(acc, *s);
        *s = acc;
        acc = next;
    }
    let total = acc;
    // Pass 2: rewrite each block with its offset.
    let ptr = SendPtr(data.as_mut_ptr());
    let sums_ref = &sums;
    par_for_grain(0, nblocks, 1, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let mut acc = sums_ref[b];
        for i in lo..hi {
            // SAFETY: blocks are disjoint index ranges.
            unsafe {
                let slot = ptr.add(i);
                let next = op(acc, *slot);
                *slot = acc;
                acc = next;
            }
        }
    });
    total
}

/// Exclusive prefix sum with `+` over unsigned 64-bit values.
#[inline]
pub fn scan_add(data: &mut [u64]) -> u64 {
    scan_with(data, 0, |a, b| a + b)
}

/// Return the indices `i in 0..n` for which `pred(i)` holds, in order —
/// the Filter of §2 applied to the identity sequence.
pub fn pack_index(n: usize, pred: impl Fn(usize) -> bool + Sync) -> Vec<u32> {
    let block = DEFAULT_GRAIN.max(n.div_ceil(8 * crate::pool::num_threads()).max(1));
    let nblocks = n.div_ceil(block);
    if nblocks <= 1 {
        return (0..n).filter(|&i| pred(i)).map(|i| i as u32).collect();
    }
    let mut counts: Vec<u64> = par_map_grain(nblocks, 1, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        (lo..hi).filter(|&i| pred(i)).count() as u64
    });
    let total = scan_add(&mut counts) as usize;
    let mut out: Vec<u32> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    let counts_ref = &counts;
    par_for_grain(0, nblocks, 1, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let mut at = counts_ref[b] as usize;
        for i in lo..hi {
            if pred(i) {
                // SAFETY: slots [counts[b], counts[b+1]) are owned by block b.
                unsafe { ptr.add(at).write(i as u32) };
                at += 1;
            }
        }
    });
    // SAFETY: exactly `total` slots were written.
    unsafe { out.set_len(total) };
    out
}

/// Keep the elements of `input` satisfying `pred`, preserving order —
/// the Filter of §2.
pub fn filter_slice<T: Copy + Send + Sync>(
    input: &[T],
    pred: impl Fn(&T) -> bool + Sync,
) -> Vec<T> {
    let n = input.len();
    let block = DEFAULT_GRAIN.max(n.div_ceil(8 * crate::pool::num_threads()).max(1));
    let nblocks = n.div_ceil(block);
    if nblocks <= 1 {
        return input.iter().copied().filter(|x| pred(x)).collect();
    }
    let mut counts: Vec<u64> = par_map_grain(nblocks, 1, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        input[lo..hi].iter().filter(|x| pred(x)).count() as u64
    });
    let total = scan_add(&mut counts) as usize;
    let mut out: Vec<T> = Vec::with_capacity(total);
    let ptr = SendPtr(out.as_mut_ptr());
    let counts_ref = &counts;
    par_for_grain(0, nblocks, 1, |b| {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        let mut at = counts_ref[b] as usize;
        for x in &input[lo..hi] {
            if pred(x) {
                // SAFETY: disjoint output ranges per block.
                unsafe { ptr.add(at).write(*x) };
                at += 1;
            }
        }
    });
    // SAFETY: exactly `total` slots were written.
    unsafe { out.set_len(total) };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(0, n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_and_tiny() {
        par_for(5, 5, |_| panic!("must not run"));
        let c = AtomicUsize::new(0);
        par_for(0, 1, |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_map_matches_sequential() {
        let v = par_map(5000, |i| i * 3);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_map_zero_len() {
        let v: Vec<usize> = par_map(0, |i| i);
        assert!(v.is_empty());
    }

    #[test]
    fn par_fill_and_copy() {
        let mut a = vec![0u32; 4096];
        par_fill(&mut a, 7);
        assert!(a.iter().all(|&x| x == 7));
        let mut b = vec![0u32; 4096];
        par_copy(&mut b, &a);
        assert_eq!(a, b);
    }

    #[test]
    fn reduce_add_matches() {
        let n = 100_000;
        assert_eq!(
            reduce_add(0, n, |i| i as u64),
            (n as u64 - 1) * n as u64 / 2
        );
    }

    #[test]
    fn reduce_min_max() {
        let data: Vec<i64> = (0..5000)
            .map(|i| ((i * 2654435761u64 as usize) % 999) as i64)
            .collect();
        let mx = reduce_max(0, data.len(), i64::MIN, |i| data[i]);
        let mn = reduce_min(0, data.len(), i64::MAX, |i| data[i]);
        assert_eq!(mx, *data.iter().max().unwrap());
        assert_eq!(mn, *data.iter().min().unwrap());
    }

    #[test]
    fn reduce_or_unions_masks() {
        let masks: Vec<u64> = (0..10_000).map(|i| 1u64 << (i % 64)).collect();
        assert_eq!(reduce_or(0, masks.len(), |i| masks[i]), u64::MAX);
        assert_eq!(reduce_or(0, 3, |i| masks[i]), 0b111);
        assert_eq!(reduce_or(5, 5, |_| u64::MAX), 0);
    }

    #[test]
    fn count_ones_matches_sequential() {
        let masks: Vec<u64> = (0..50_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let want: u64 = masks.iter().map(|m| m.count_ones() as u64).sum();
        assert_eq!(count_ones(&masks), want);
        assert_eq!(count_ones(&[]), 0);
    }

    #[test]
    fn count_ones_per_bit_matches_sequential() {
        let masks: Vec<u64> = (0..30_000u64)
            .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95))
            .collect();
        let got = count_ones_per_bit(&masks);
        for (b, &count) in got.iter().enumerate() {
            let want = masks.iter().filter(|&&m| m & (1 << b) != 0).count() as u64;
            assert_eq!(count, want, "bit {b}");
        }
        let total: u64 = got.iter().sum();
        assert_eq!(total, count_ones(&masks));
    }

    #[test]
    fn reduce_empty_range_returns_identity() {
        assert_eq!(reduce_add(3, 3, |_| 1), 0);
        assert_eq!(reduce_max(3, 3, -5i64, |_| 100), -5);
    }

    #[test]
    fn scan_add_matches_sequential() {
        for n in [0usize, 1, 2, 100, 4096, 10_001, 100_000] {
            let orig: Vec<u64> = (0..n as u64).map(|i| i % 17).collect();
            let mut v = orig.clone();
            let total = scan_add(&mut v);
            let mut acc = 0u64;
            for i in 0..n {
                assert_eq!(v[i], acc, "index {i} of n={n}");
                acc += orig[i];
            }
            assert_eq!(total, acc);
        }
    }

    #[test]
    fn scan_with_max_operator() {
        let mut v = vec![3u64, 1, 4, 1, 5, 9, 2, 6];
        let total = scan_with(&mut v, 0, |a, b| a.max(b));
        assert_eq!(v, vec![0, 3, 3, 4, 4, 5, 9, 9]);
        assert_eq!(total, 9);
    }

    #[test]
    fn pack_index_matches_sequential() {
        let n = 50_000;
        let got = pack_index(n, |i| i % 7 == 0);
        let want: Vec<u32> = (0..n).filter(|i| i % 7 == 0).map(|i| i as u32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pack_index_none_and_all() {
        assert!(pack_index(1000, |_| false).is_empty());
        assert_eq!(pack_index(1000, |_| true).len(), 1000);
    }

    #[test]
    fn filter_slice_preserves_order() {
        let data: Vec<u32> = (0..30_000)
            .map(|i| (i as u32).wrapping_mul(2654435761))
            .collect();
        let got = filter_slice(&data, |&x| x % 3 == 0);
        let want: Vec<u32> = data.iter().copied().filter(|x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_for_slices_disjoint_writes() {
        let mut v = vec![0usize; 9999];
        par_for_slices(&mut v, |i, x| *x = i + 1);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    }
}
