//! A fixed-capacity concurrent open-addressing hash table.
//!
//! The paper's maximal-matching implementation "uses a parallel hash table to
//! aggregate edges that will be processed in a given round" (§5.3); the sparse
//! histogram and inter-cluster edge deduplication in connectivity use the same
//! structure. Keys are `u64` (with one reserved EMPTY sentinel), values are
//! `u64`, and all operations are lock-free CAS loops over linear probes.
//!
//! Two value conventions coexist, chosen per key by the caller:
//! * **counter** values ([`ConcurrentMap::fetch_add`] /
//!   [`ConcurrentMap::get_counter`]) are stored raw, starting at 0;
//! * **encoded** values ([`ConcurrentMap::fetch_min`] /
//!   [`ConcurrentMap::insert_if_absent`] / [`ConcurrentMap::get_encoded`])
//!   are stored as `val + 1` so the zero-initialized slot reads as "unset".
//!   This reserves `val == u64::MAX`, which those operations reject (it would
//!   wrap to the unset sentinel and corrupt the map). Do not mix the two
//!   conventions on the same key.

use crate::rng::hash64;
use std::sync::atomic::{AtomicU64, Ordering};

const EMPTY: u64 = u64::MAX;

/// A concurrent `u64 -> u64` map with a capacity fixed at construction.
///
/// Keys must not equal `u64::MAX`. Inserting more than the declared capacity
/// panics (the callers size it from known bounds, e.g. frontier degrees).
pub struct ConcurrentMap {
    keys: Vec<AtomicU64>,
    vals: Vec<AtomicU64>,
    mask: usize,
}

impl ConcurrentMap {
    /// Create a table able to hold at least `capacity` entries with low
    /// contention (size is rounded to the next power of two, ≥ 2x capacity).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(8) * 2).next_power_of_two();
        let keys = (0..slots).map(|_| AtomicU64::new(EMPTY)).collect();
        let vals = (0..slots).map(|_| AtomicU64::new(0)).collect();
        Self {
            keys,
            vals,
            mask: slots - 1,
        }
    }

    /// Total slot count (2x requested capacity, rounded up).
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        (hash64(key) as usize) & self.mask
    }

    /// Find the slot for `key`, claiming an empty one if absent.
    #[inline]
    fn probe_insert(&self, key: u64) -> usize {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        let mut i = self.slot_of(key);
        let mut tries = 0;
        loop {
            // ORDERING: Acquire — pairs with the Release half of a racing
            // claimer's CAS below, so a probe that finds `key` is ordered
            // after the claim and the value-slot ops that follow it.
            let cur = self.keys[i].load(Ordering::Acquire);
            if cur == key {
                return i;
            }
            if cur == EMPTY {
                // ORDERING: AcqRel on success — Release publishes the claim
                // to later Acquire probes; Acquire (and the Acquire failure
                // ordering) orders our slot use after a racing claimer.
                match self.keys[i].compare_exchange(EMPTY, key, Ordering::AcqRel, Ordering::Acquire)
                {
                    Ok(_) => return i,
                    Err(found) if found == key => return i,
                    Err(_) => {} // someone else claimed it; keep probing
                }
            } else {
                i = (i + 1) & self.mask;
                tries += 1;
                assert!(tries <= self.mask, "ConcurrentMap over capacity");
                continue;
            }
        }
    }

    /// Add `delta` to the value of `key` (inserting 0 first if absent);
    /// returns the previous value.
    pub fn fetch_add(&self, key: u64, delta: u64) -> u64 {
        let i = self.probe_insert(key);
        // ORDERING: AcqRel — RMWs on one atomic already form a total order;
        // AcqRel additionally keeps the counter's publication ordered with
        // the key claim for readers that probe the key first.
        self.vals[i].fetch_add(delta, Ordering::AcqRel)
    }

    /// Keep the minimum of the current value and `val` for `key`.
    /// Absent keys behave as unset. Returns `true` if `val` was written.
    ///
    /// # Value encoding
    /// Slots are zero-initialized, so values are stored as `val + 1` with `0`
    /// meaning "unset" (see [`Self::get_encoded`]). That reserves
    /// `u64::MAX`: encoding it would wrap back to the unset sentinel —
    /// silently in release builds, corrupting the map — so it is rejected
    /// here. Callers needing a "no value" key should simply not insert it.
    ///
    /// # Panics
    /// Panics if `val == u64::MAX` (unrepresentable under the `+1` encoding).
    pub fn fetch_min(&self, key: u64, val: u64) -> bool {
        assert_ne!(
            val,
            u64::MAX,
            "u64::MAX is unrepresentable under the +1 value encoding"
        );
        let i = self.probe_insert(key);
        // First touch initializes the slot to MAX semantics: we encode
        // "unset" as 0 from construction, so use a CAS loop from a snapshot
        // and treat the first writer specially via a tag-free convention:
        // values stored are `val + 1`, 0 means unset.
        let enc = val + 1;
        // ORDERING: Acquire — seeds the CAS loop with a value no older than
        // the last writer's Release.
        let mut cur = self.vals[i].load(Ordering::Acquire);
        loop {
            if cur != 0 && cur <= enc {
                return false;
            }
            // ORDERING: AcqRel success / Acquire failure — the winning min
            // is published with Release; a losing thread re-reads a value at
            // least as fresh as the winner's.
            match self.vals[i].compare_exchange(cur, enc, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    /// Insert `(key, val)` only if the key is absent; returns `true` on the
    /// first insert.
    ///
    /// Uses the same `+1` value encoding as [`Self::fetch_min`], so
    /// `val == u64::MAX` is reserved and rejected.
    ///
    /// # Panics
    /// Panics if `val == u64::MAX` (unrepresentable under the `+1` encoding).
    pub fn insert_if_absent(&self, key: u64, val: u64) -> bool {
        assert_ne!(
            val,
            u64::MAX,
            "u64::MAX is unrepresentable under the +1 value encoding"
        );
        let i = self.probe_insert(key);
        // ORDERING: AcqRel success / Acquire failure — Release publishes the
        // first-inserted value; Acquire orders a losing thread after the
        // winner so its subsequent reads see the winner's value.
        self.vals[i]
            .compare_exchange(0, val + 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Read the value for `key` decoded with the `+1` convention used by
    /// [`Self::fetch_min`] / [`Self::insert_if_absent`].
    pub fn get_encoded(&self, key: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        let mut tries = 0;
        loop {
            // ORDERING: Acquire — pairs with the claimer's Release CAS; a
            // reader that finds the key is ordered after the claim.
            let cur = self.keys[i].load(Ordering::Acquire);
            if cur == key {
                // ORDERING: Acquire — pairs with the writers' Release RMWs
                // so the value read is no older than the matching key claim.
                let v = self.vals[i].load(Ordering::Acquire);
                return if v == 0 { None } else { Some(v - 1) };
            }
            if cur == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
            tries += 1;
            if tries > self.mask {
                return None;
            }
        }
    }

    /// Raw value lookup (for [`Self::fetch_add`]-style counters).
    pub fn get_counter(&self, key: u64) -> Option<u64> {
        let mut i = self.slot_of(key);
        let mut tries = 0;
        loop {
            // ORDERING: Acquire — pairs with the claimer's Release CAS; see
            // `get_encoded`.
            let cur = self.keys[i].load(Ordering::Acquire);
            if cur == key {
                // ORDERING: Acquire — pairs with `fetch_add`'s Release half.
                return Some(self.vals[i].load(Ordering::Acquire));
            }
            if cur == EMPTY {
                return None;
            }
            i = (i + 1) & self.mask;
            tries += 1;
            if tries > self.mask {
                return None;
            }
        }
    }

    /// Snapshot all `(key, raw_value)` pairs. Must not race with writers.
    pub fn entries(&self) -> Vec<(u64, u64)> {
        let keys = &self.keys;
        let vals = &self.vals;
        // ORDERING: Relaxed — the snapshot API is documented as not racing
        // with writers, so there is nothing left to order.
        let idx = crate::ops::pack_index(keys.len(), |i| keys[i].load(Ordering::Relaxed) != EMPTY);
        // ORDERING: Relaxed — same quiescence argument as above.
        idx.iter()
            .map(|&i| {
                let i = i as usize;
                // ORDERING: Relaxed — same quiescence argument as above.
                (
                    keys[i].load(Ordering::Relaxed),
                    vals[i].load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::par_for;

    #[test]
    fn fetch_add_counts_concurrently() {
        let map = ConcurrentMap::with_capacity(100);
        par_for(0, 10_000, |i| {
            map.fetch_add((i % 50) as u64, 1);
        });
        for k in 0..50u64 {
            assert_eq!(map.get_counter(k), Some(200));
        }
        assert_eq!(map.get_counter(50), None);
    }

    #[test]
    fn fetch_min_keeps_minimum() {
        let map = ConcurrentMap::with_capacity(10);
        par_for(0, 1000, |i| {
            map.fetch_min(7, (1000 - i) as u64);
        });
        assert_eq!(map.get_encoded(7), Some(1));
    }

    #[test]
    fn insert_if_absent_single_winner() {
        let map = ConcurrentMap::with_capacity(4);
        let winners = std::sync::atomic::AtomicUsize::new(0);
        par_for(0, 512, |i| {
            if map.insert_if_absent(3, i as u64) {
                winners.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(winners.load(Ordering::Relaxed), 1);
        assert!(map.get_encoded(3).is_some());
    }

    #[test]
    fn entries_returns_all_pairs() {
        let map = ConcurrentMap::with_capacity(64);
        for k in 0..64u64 {
            map.fetch_add(k * 3, k);
        }
        let mut e = map.entries();
        e.sort_unstable();
        assert_eq!(e.len(), 64);
        assert_eq!(e[1], (3, 1));
    }

    #[test]
    fn fetch_min_accepts_largest_encodable_value() {
        // Regression: `u64::MAX - 1` encodes to `u64::MAX` and must round-trip
        // (only `u64::MAX` itself is reserved by the +1 encoding).
        let map = ConcurrentMap::with_capacity(8);
        assert!(map.fetch_min(1, u64::MAX - 1));
        assert_eq!(map.get_encoded(1), Some(u64::MAX - 1));
        // A smaller value still wins the min race.
        assert!(map.fetch_min(1, 5));
        assert_eq!(map.get_encoded(1), Some(5));
        assert!(map.insert_if_absent(2, u64::MAX - 1));
        assert_eq!(map.get_encoded(2), Some(u64::MAX - 1));
    }

    #[test]
    #[should_panic(expected = "unrepresentable under the +1 value encoding")]
    fn fetch_min_rejects_reserved_value() {
        // Regression: `val + 1` used to wrap to the "unset" sentinel for
        // `u64::MAX` (debug overflow panic, silent corruption in release).
        let map = ConcurrentMap::with_capacity(8);
        map.fetch_min(1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "unrepresentable under the +1 value encoding")]
    fn insert_if_absent_rejects_reserved_value() {
        let map = ConcurrentMap::with_capacity(8);
        map.insert_if_absent(1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn overflow_panics() {
        let map = ConcurrentMap::with_capacity(4);
        // capacity rounds up to 16 slots; inserting 17 distinct keys must trip.
        for k in 0..32u64 {
            map.fetch_add(k, 1);
        }
    }
}
