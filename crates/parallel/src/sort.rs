//! Parallel sorting: a merge sort with parallel recursive merging.
//!
//! Used by graph construction (edge-list sorting), histogram collection, and
//! the compressed-graph builder. `O(n log n)` work, `O(log^3 n)` depth.

use crate::ops::{par_copy, SendPtr};
use crate::pool::join;

const SEQ_SORT_THRESHOLD: usize = 4096;
const SEQ_MERGE_THRESHOLD: usize = 4096;

/// Sort `data` in parallel with the natural order.
pub fn par_sort<T: Copy + Send + Sync + Ord>(data: &mut [T]) {
    par_sort_by(data, |a, b| a.cmp(b));
}

/// Sort `data` in parallel by a key extractor.
pub fn par_sort_by_key<T, K, F>(data: &mut [T], key: F)
where
    T: Copy + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by(data, |a, b| key(a).cmp(&key(b)));
}

/// Sort `data` in parallel with a comparator. Not stable.
pub fn par_sort_by<T, C>(data: &mut [T], cmp: C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    let n = data.len();
    if n <= SEQ_SORT_THRESHOLD {
        data.sort_unstable_by(&cmp);
        return;
    }
    // Scratch for the merge passes; seeding it with a copy of `data` keeps it
    // fully initialized (`T: Copy`, so this is one memcpy) without an
    // `unsafe` `set_len` on uninitialized capacity.
    let mut buf: Vec<T> = data.to_vec();
    sort_rec(data, &mut buf, &cmp);
}

fn sort_rec<T, C>(data: &mut [T], buf: &mut [T], cmp: &C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    let n = data.len();
    if n <= SEQ_SORT_THRESHOLD {
        data.sort_unstable_by(cmp);
        return;
    }
    let mid = n / 2;
    {
        let (dl, dr) = data.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        join(|| sort_rec(dl, bl, cmp), || sort_rec(dr, br, cmp));
    }
    // Merge halves of `data` into `buf`, then copy back.
    {
        let (left, right) = data.split_at(mid);
        merge_into(left, right, buf, cmp);
    }
    par_copy(data, buf);
}

/// Merge two sorted runs into `out` (must have length `a.len() + b.len()`),
/// splitting recursively for parallelism.
pub fn merge_into<T, C>(a: &[T], b: &[T], out: &mut [T], cmp: &C)
where
    T: Copy + Send + Sync,
    C: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    assert_eq!(a.len() + b.len(), out.len(), "merge output size mismatch");
    let total = out.len();
    if total <= SEQ_MERGE_THRESHOLD {
        seq_merge(a, b, out, cmp);
        return;
    }
    // Split at the median position of the larger run; binary-search the
    // matching split in the other run.
    if a.len() >= b.len() {
        let am = a.len() / 2;
        let bm = partition_point_by(b, |x| cmp(x, &a[am]).is_lt());
        let (o1, o2) = out.split_at_mut(am + bm);
        join(
            || merge_into(&a[..am], &b[..bm], o1, cmp),
            || merge_into(&a[am..], &b[bm..], o2, cmp),
        );
    } else {
        let bm = b.len() / 2;
        let am = partition_point_by(a, |x| cmp(x, &b[bm]).is_le());
        let (o1, o2) = out.split_at_mut(am + bm);
        join(
            || merge_into(&a[..am], &b[..bm], o1, cmp),
            || merge_into(&a[am..], &b[bm..], o2, cmp),
        );
    }
}

fn partition_point_by<T>(s: &[T], pred: impl Fn(&T) -> bool) -> usize {
    let mut lo = 0;
    let mut hi = s.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if pred(&s[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn seq_merge<T, C>(a: &[T], b: &[T], out: &mut [T], cmp: &C)
where
    T: Copy,
    C: Fn(&T, &T) -> std::cmp::Ordering,
{
    let (mut i, mut j, mut k) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        if cmp(&b[j], &a[i]).is_lt() {
            out[k] = b[j];
            j += 1;
        } else {
            out[k] = a[i];
            i += 1;
        }
        k += 1;
    }
    while i < a.len() {
        out[k] = a[i];
        i += 1;
        k += 1;
    }
    while j < b.len() {
        out[k] = b[j];
        j += 1;
        k += 1;
    }
}

// Suppress unused warning: SendPtr is re-exported for slice scatter use elsewhere.
#[allow(unused)]
fn _uses(_: SendPtr<u8>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64() % 1_000_003).collect()
    }

    #[test]
    fn par_sort_matches_std_sort() {
        for n in [0usize, 1, 2, 100, 5000, 50_000, 123_457] {
            let mut a = random_vec(n, n as u64);
            let mut want = a.clone();
            want.sort_unstable();
            par_sort(&mut a);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn par_sort_by_key_descending() {
        let mut a = random_vec(30_000, 9);
        par_sort_by_key(&mut a, |&x| std::cmp::Reverse(x));
        assert!(a.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn par_sort_already_sorted_and_reverse() {
        let mut a: Vec<u64> = (0..20_000).collect();
        par_sort(&mut a);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        let mut b: Vec<u64> = (0..20_000).rev().collect();
        par_sort(&mut b);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn par_sort_with_duplicates() {
        let mut a: Vec<u64> = (0..50_000).map(|i| i % 10).collect();
        par_sort(&mut a);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_into_basic() {
        let a: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..10_000).map(|i| i * 2 + 1).collect();
        let mut out = vec![0u64; 20_000];
        merge_into(&a, &b, &mut out, &|x, y| x.cmp(y));
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(out[0], 0);
        assert_eq!(out[19_999], 19_999);
    }

    #[test]
    fn merge_into_uneven_lengths() {
        let a: Vec<u64> = (0..50_000).collect();
        let b: Vec<u64> = vec![25_000];
        let mut out = vec![0u64; 50_001];
        merge_into(&a, &b, &mut out, &|x, y| x.cmp(y));
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
    }
}
