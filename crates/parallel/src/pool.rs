//! The work-stealing thread pool and the structured [`join`] primitive.
//!
//! One deque per worker (LIFO for the owner, FIFO for thieves) plus a global
//! injector for jobs submitted from outside the pool — the classic Cilk /
//! Blumofe-Leiserson design the paper's own scheduler follows. `join(a, b)`
//! pushes `b`, runs `a`, then either pops `b` back or steals other work until
//! the thief finishes `b`.
//!
//! # FENCE PROTOCOL (sleep/notify)
//!
//! `Sleep::notify` and `Sleep::sleep` form a SeqCst fence pair — the
//! classic check-then-park protocol. The producer publishes work, executes
//! `fence(SeqCst)`, then reads `sleepers`; the sleeper increments
//! `sleepers`, executes `fence(SeqCst)`, then re-checks for work. In the
//! single total order of SeqCst fences one side must observe the other's
//! preceding write: either the producer sees `sleepers > 0` and notifies
//! under the lock the sleeper holds until it parks, or the sleeper's
//! re-check sees the published work and never parks. Both
//! `fence(Ordering::SeqCst)` sites in this file belong to this protocol
//! and are covered by this banner (sage-lint `ordering-comment` rule).

use crate::job::{HeapJob, JobRef, StackJob};
use crate::latch::{CountLatch, LockLatch, SpinLatch};
use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

struct Sleep {
    lock: Mutex<()>,
    cond: Condvar,
    sleepers: AtomicUsize,
}

impl Sleep {
    fn new() -> Self {
        Self {
            lock: Mutex::new(()),
            cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// Wake sleeping workers because new work arrived.
    ///
    /// The caller publishes the work *before* calling this. The seq-cst
    /// fence pairs with the one in [`Sleep::sleep`]: either this load sees
    /// the sleeper's count increment (and the notify goes through the lock
    /// the sleeper holds until it parks), or the sleeper's `has_work`
    /// re-check sees the published work and it never parks. A wakeup can
    /// therefore not fall into the window between a worker's last queue scan
    /// and its park.
    #[inline]
    fn notify(&self) {
        fence(Ordering::SeqCst);
        // ORDERING: Relaxed — the SeqCst fence above already orders this
        // load against the sleeper's increment (see FENCE PROTOCOL); if it
        // still reads 0, the sleeper's post-fence re-check is guaranteed to
        // see the work we published.
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Park briefly, unless `has_work` turns up work between the caller's
    /// last queue scan and the park (the lost-wakeup window). The sleeper
    /// count is incremented while holding the lock, so a notifier that
    /// observes it cannot fire `notify_all` before this thread is parked.
    /// A timeout still bounds the stall of any undiscovered interleaving;
    /// longer idle streaks park longer so that idle pools do not steal
    /// cycles from busy ones (the harness runs several pools in one
    /// process).
    fn sleep(&self, streak: u32, has_work: impl FnOnce() -> bool) {
        let mut g = self.lock.lock();
        // ORDERING: Relaxed — visibility to the notifier is supplied by the
        // SeqCst fence below (see FENCE PROTOCOL), not by this RMW itself.
        self.sleepers.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if has_work() {
            // ORDERING: Relaxed — bookkeeping only; a notifier reading a
            // stale nonzero count merely takes the lock and notifies a
            // no-longer-parked thread, which is harmless.
            self.sleepers.fetch_sub(1, Ordering::Relaxed);
            return;
        }
        let ms = (1 + streak / 16).min(20) as u64;
        self.cond.wait_for(&mut g, Duration::from_millis(ms));
        drop(g);
        // ORDERING: Relaxed — same as above: an overestimate only costs a
        // spurious notify_all, never a lost wakeup.
        self.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}

pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep: Sleep,
    terminate: AtomicBool,
    num_threads: usize,
}

impl Registry {
    #[inline]
    fn notify_work(&self) {
        self.sleep.notify();
    }

    /// Attempt to steal one job, scanning the injector and then other
    /// workers' deques starting from `start`. The caller picks a fresh
    /// pseudo-random `start` per attempt: a fixed rotational order would
    /// send every thief to the same victim first and convoy on its `top`
    /// index.
    fn steal(&self, from: usize, start: usize) -> Option<JobRef> {
        loop {
            match self.injector.steal() {
                crossbeam_deque::Steal::Success(job) => return Some(job),
                crossbeam_deque::Steal::Empty => break,
                crossbeam_deque::Steal::Retry => continue,
            }
        }
        let n = self.stealers.len();
        let start = start % n.max(1); // reduce the raw hash so `start + i` cannot overflow
        for i in 0..n {
            let victim = (start + i) % n;
            if victim == from {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    crossbeam_deque::Steal::Success(job) => return Some(job),
                    crossbeam_deque::Steal::Empty => break,
                    crossbeam_deque::Steal::Retry => continue,
                }
            }
        }
        None
    }

    /// Whether any queue in the pool currently holds work. Used by parking
    /// workers for the final pre-park re-check; O(threads) but only run on
    /// the idle path.
    fn has_work(&self) -> bool {
        !self.injector.is_empty() || self.stealers.iter().any(|s| !s.is_empty())
    }
}

pub(crate) struct WorkerThread {
    deque: Deque<JobRef>,
    index: usize,
    registry: Arc<Registry>,
    /// Private SplitMix64 state for picking steal-victim starting points.
    steal_rng: Cell<u64>,
}

impl WorkerThread {
    #[inline]
    pub(crate) fn current() -> *const WorkerThread {
        WORKER.with(|w| w.get())
    }

    #[inline]
    fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.notify_work();
    }

    /// Pop the most recently pushed job (ours, unless it was stolen).
    #[inline]
    fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    /// Steal from the injector or a sibling, starting the victim scan at a
    /// per-attempt pseudo-random index so thieves spread across victims.
    #[inline]
    fn steal(&self) -> Option<JobRef> {
        let s = self.steal_rng.get();
        self.steal_rng.set(s.wrapping_add(1));
        self.registry
            .steal(self.index, crate::rng::hash64(s) as usize)
    }

    /// Busy-wait for `latch`, executing any available work in the meantime.
    #[inline]
    fn wait_until(&self, latch: &SpinLatch) {
        self.wait_probe(|| latch.probe());
    }

    /// Busy-wait until `probe` turns true, executing any available work in
    /// the meantime. Long waits back off to short sleeps so a starved sibling
    /// (e.g. on an oversubscribed or throttled host) can finish the stolen
    /// job.
    fn wait_probe(&self, probe: impl Fn() -> bool) {
        let mut spins = 0u32;
        while !probe() {
            let job = self.pop().or_else(|| self.steal());
            match job {
                Some(job) => {
                    // SAFETY: the queues hand out each JobRef exactly once,
                    // so a popped/stolen ref is live and not yet executed.
                    unsafe { job.execute() };
                    spins = 0;
                }
                None => {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 512 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }
    }

    fn main_loop(&self) {
        let registry = &self.registry;
        let mut idle_rounds = 0u32;
        // ORDERING: Acquire — pairs with the Release store in `Pool::drop`;
        // a worker that observes termination also observes every write made
        // before shutdown was requested.
        while !registry.terminate.load(Ordering::Acquire) {
            match self.pop().or_else(|| self.steal()) {
                Some(job) => {
                    // SAFETY: the queues hand out each JobRef exactly once,
                    // so a popped/stolen ref is live and not yet executed.
                    unsafe { job.execute() };
                    idle_rounds = 0;
                }
                None => {
                    idle_rounds += 1;
                    if idle_rounds < 32 {
                        std::thread::yield_now();
                    } else {
                        registry.sleep.sleep(idle_rounds - 32, || {
                            // ORDERING: Acquire — same pairing as the loop
                            // condition above (Release store in `Pool::drop`).
                            registry.terminate.load(Ordering::Acquire) || registry.has_work()
                        });
                    }
                }
            }
        }
    }
}

/// A fork-join thread pool.
///
/// Most users interact with the process-wide [`global_pool`]; dedicated pools
/// exist so that the benchmark harness can measure 1-thread (`T1`) and
/// all-thread (`Tp`) executions in one process (Figure 6).
pub struct Pool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with `num_threads` workers (minimum 1).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let deques: Vec<Deque<JobRef>> = (0..num_threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleep: Sleep::new(),
            terminate: AtomicBool::new(false),
            num_threads,
        });
        let mut handles = Vec::with_capacity(num_threads);
        for (index, deque) in deques.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("sage-worker-{index}"))
                .spawn(move || {
                    let worker = WorkerThread {
                        deque,
                        index,
                        registry,
                        steal_rng: Cell::new(crate::rng::hash64(index as u64)),
                    };
                    WORKER.with(|w| w.set(&worker as *const WorkerThread));
                    worker.main_loop();
                    WORKER.with(|w| w.set(std::ptr::null()));
                })
                .expect("failed to spawn sage worker thread");
            handles.push(handle);
        }
        Pool { registry, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads
    }

    /// Run `f` inside the pool, blocking until it completes.
    ///
    /// If the current thread is already a worker of this pool, `f` runs
    /// inline; otherwise it is injected and executed by a worker, so nested
    /// `join` calls inside `f` are scheduled on this pool.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let current = WorkerThread::current();
        if !current.is_null() {
            // SAFETY: a non-null WORKER pointer refers to the live
            // WorkerThread of the current thread; it is set for the whole
            // duration of `main_loop`, which this call runs inside.
            let worker = unsafe { &*current };
            if Arc::ptr_eq(&worker.registry, &self.registry) {
                return f();
            }
        }
        let job = StackJob::<LockLatch, F, R>::new(LockLatch::new(), f);
        // SAFETY: `job` lives on this stack frame until `take_result`
        // below, and the latch wait keeps the frame alive until the worker
        // that executes the ref has finished with it.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.injector.push(job_ref);
        self.registry.notify_work();
        job.latch().wait();
        // SAFETY: the latch wait above established that the job executed,
        // so the result slot is filled and no other thread touches the job.
        unsafe { job.take_result() }
    }

    /// Run `f` with a [`Scope`] on which heterogeneous jobs can be spawned;
    /// blocks until `f` *and every spawned job* have completed.
    ///
    /// Unlike [`Pool::install`] (one job, one result), a scope expresses a
    /// dynamic fan-out whose closures may borrow data from the caller's stack
    /// (anything outliving `'scope`). Scopes submitted concurrently from
    /// multiple external threads interleave on the worker set: spawns from
    /// outside the pool land in the sharded FIFO injector, spawns from
    /// workers go to their own deque, and idle workers steal across all of
    /// them — this is the multi-query serving entry point.
    ///
    /// `f` runs on the calling thread. Task-inherited context (meter scopes,
    /// query arenas — see [`crate::context`]) is captured per spawn and
    /// installed around each job's execution. A panic in `f` or in any
    /// spawned job is re-thrown here after all jobs have finished (the first
    /// spawned panic wins).
    pub fn scope<'scope, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'scope>) -> R,
    {
        scope_on(Arc::clone(&self.registry), f)
    }
}

/// Cross-thread pointer to a [`Scope`]; a method (not field) accessor keeps
/// edition-2021 closures capturing the whole Send wrapper rather than the
/// raw pointer field.
struct ScopePtr<'scope>(*const Scope<'scope>);

// SAFETY: Scope is Sync (all fields are thread-safe) and outlives the jobs
// that carry this pointer, per the latch protocol in `scope_on`.
unsafe impl<'scope> Send for ScopePtr<'scope> {}

impl<'scope> ScopePtr<'scope> {
    /// # Safety
    ///
    /// The caller must ensure the scope is still alive (latch count > 0).
    unsafe fn as_scope(&self) -> &Scope<'scope> {
        // SAFETY: liveness is the caller's obligation, per the doc above.
        unsafe { &*self.0 }
    }
}

/// Shared implementation of [`Pool::scope`] / [`scope`].
fn scope_on<'scope, F, R>(registry: Arc<Registry>, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let scope = Scope {
        registry,
        latch: Arc::new(CountLatch::new()),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // The scope body itself holds one count; release it and wait for the
    // spawned jobs. Workers of this pool keep stealing while they wait so
    // a scope created on a worker cannot deadlock the pool.
    scope.latch.decrement();
    let current = WorkerThread::current();
    // SAFETY: `current` is checked non-null first; a non-null WORKER
    // pointer is valid for the lifetime of the worker's `main_loop`.
    let on_this_pool =
        !current.is_null() && Arc::ptr_eq(&unsafe { &*current }.registry, &scope.registry);
    if on_this_pool {
        // SAFETY: non-null and same-pool, per the check directly above.
        unsafe { &*current }.wait_probe(|| scope.latch.probe());
    } else {
        scope.latch.wait();
    }
    match result {
        Err(p) => panic::resume_unwind(p),
        Ok(r) => {
            if let Some(p) = scope.panic.lock().take() {
                panic::resume_unwind(p);
            }
            r
        }
    }
}

/// A fork scope created by [`Pool::scope`]: spawned closures may borrow any
/// data that outlives `'scope`, and the scope does not end until every spawn
/// has completed.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Outstanding work: 1 for the scope body plus 1 per unfinished spawn.
    ///
    /// `Arc`-shared with every spawned job: the final `decrement()` makes the
    /// scope observable as complete, at which point `scope_on` may return and
    /// free the `Scope` — so the decrementing worker must only touch latch
    /// memory *it* keeps alive, never the scope's stack frame.
    latch: Arc<CountLatch>,
    /// First panic observed in a spawned job, re-thrown when the scope ends.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Invariant over `'scope`, as the spawned closures store borrows of it.
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` onto the pool (the `spawn_scoped` operation). Returns
    /// immediately; the job runs on some worker, inheriting the spawning
    /// task's context slots. The closure receives the scope back (as in
    /// rayon) so jobs can spawn further jobs. Panics inside `f` are captured
    /// and re-thrown when the owning [`Pool::scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.increment();
        let this = ScopePtr(self as *const Self);
        let latch = Arc::clone(&self.latch);
        let job = HeapJob::new(move || {
            {
                // SAFETY: until the decrement below, the latch count is > 0,
                // so `scope_on` is still waiting and the scope is alive.
                let scope = unsafe { this.as_scope() };
                if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| f(scope))) {
                    let mut slot = scope.panic.lock();
                    if slot.is_none() {
                        *slot = Some(p);
                    }
                }
            }
            // After this point the scope may be freed at any instant (the
            // owner's spin-probe needs no lock); touch only the Arc'd latch.
            latch.decrement();
        });
        // SAFETY: executed exactly once; outstanding-borrow lifetime is
        // guaranteed by the scope's latch wait, as documented on HeapJob.
        let job_ref = unsafe { job.into_job_ref() };
        let current = WorkerThread::current();
        // SAFETY: both derefs are guarded by the non-null check; a non-null
        // WORKER pointer is valid while its thread runs.
        if !current.is_null() && Arc::ptr_eq(&unsafe { &*current }.registry, &self.registry) {
            // SAFETY: same guard as the condition directly above.
            unsafe { &*current }.push(job_ref);
        } else {
            self.registry.injector.push(job_ref);
            self.registry.notify_work();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // ORDERING: Release — pairs with the workers' Acquire loads in
        // `main_loop`, publishing all pre-shutdown writes to them.
        self.registry.terminate.store(true, Ordering::Release);
        // Wake all sleepers repeatedly until every worker observed termination.
        for handle in self.handles.drain(..) {
            while !handle.is_finished() {
                self.registry.sleep.notify();
                std::thread::yield_now();
            }
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SAGE_THREADS") {
        match v.parse::<usize>() {
            Ok(n) => return n.max(1),
            Err(_) => {
                // A typo'd env var must not silently fall back to all cores:
                // that would corrupt T1-vs-Tp bench comparisons. Warn once.
                static WARNED: AtomicBool = AtomicBool::new(false);
                // ORDERING: Relaxed — one-shot warning latch; no data is
                // published through it.
                if !WARNED.swap(true, Ordering::Relaxed) {
                    eprintln!(
                        "sage-parallel: ignoring unparsable SAGE_THREADS={v:?}; \
                         defaulting to all hardware threads"
                    );
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide pool, created on first use with
/// `SAGE_THREADS`-many workers (default: all hardware threads).
pub fn global_pool() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// Number of workers in the pool the current thread belongs to (or the global
/// pool for external threads).
pub fn num_threads() -> usize {
    let current = WorkerThread::current();
    if !current.is_null() {
        // SAFETY: guarded by the non-null check; a non-null WORKER pointer
        // is valid while its thread runs, and we only read a field.
        unsafe { &*current }.registry.num_threads
    } else {
        global_pool().num_threads()
    }
}

/// Index of the current worker thread within its pool, or `None` when called
/// from a thread outside any pool. Used by `edgeMapChunked` for its
/// thread-local chunk vectors (§4.1.2).
pub fn worker_index() -> Option<usize> {
    let current = WorkerThread::current();
    if current.is_null() {
        None
    } else {
        // SAFETY: guarded by the non-null check above; field read only.
        Some(unsafe { (*current).index })
    }
}

/// `true` when the calling thread is a pool worker.
pub fn in_worker() -> bool {
    !WorkerThread::current().is_null()
}

/// Create a fork scope (see [`Pool::scope`]) on the current thread's pool:
/// the pool this worker belongs to, or the global pool for external threads.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    let current = WorkerThread::current();
    if current.is_null() {
        global_pool().scope(f)
    } else {
        // SAFETY: guarded by the non-null check above; the registry Arc is
        // cloned before this call returns, so no dangling use.
        scope_on(Arc::clone(&unsafe { &*current }.registry), f)
    }
}

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// This is the binary `fork` of the T-RAM model (§3.1). Panics in either
/// closure propagate to the caller after both branches have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let current = WorkerThread::current();
    if current.is_null() {
        // External thread: move the whole join into the global pool.
        return global_pool().install(|| join(a, b));
    }
    // SAFETY: `current` is non-null (checked above), so it points at the
    // live WorkerThread of this thread for the duration of the call.
    let worker = unsafe { &*current };
    join_on_worker(worker, a, b)
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::<SpinLatch, B, RB>::new(SpinLatch::new(), b);
    // SAFETY: `job_b` lives on this stack frame until `take_result` below;
    // the latch protocol guarantees the frame outlives any thief's use.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    let job_b_id = job_b_ref.id();
    worker.push(job_b_ref);

    let result_a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));

    // Either pop `b` back and run it inline, or help out until the thief is done.
    while !job_b.latch().probe() {
        match worker.pop() {
            Some(job) => {
                if job.id() == job_b_id {
                    // SAFETY: we popped `b` back ourselves, so no thief
                    // holds it; it runs exactly once, here.
                    unsafe { job_b.run_inline() };
                    break;
                }
                // A leftover job pushed during `a` (only possible if `a`
                // panicked mid-join); execute it to preserve progress.
                // SAFETY: popped refs are live and executed exactly once.
                unsafe { job.execute() };
            }
            None => {
                worker.wait_until(job_b.latch());
                break;
            }
        }
    }
    debug_assert!(job_b.latch().probe());

    // SAFETY: the latch probe above confirmed `b` finished, so the result
    // slot is filled and no other thread touches the job again.
    let result_b = unsafe { job_b.take_result() };
    match result_a {
        Ok(ra) => (ra, result_b),
        Err(p) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn join_nested_fib() {
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| "left", || vec![1, 2, 3]);
        assert_eq!(a, "left");
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || -> usize { panic!("b panicked") });
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let r = std::panic::catch_unwind(|| {
            join(|| -> usize { panic!("a panicked") }, || 1);
        });
        assert!(r.is_err());
    }

    #[test]
    fn single_thread_pool_executes() {
        let pool = Pool::new(1);
        let v = pool.install(|| {
            let (a, b) = join(|| 2, || 3);
            a + b
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn dedicated_pool_counts_workers() {
        let pool = Pool::new(3);
        let seen = AtomicU64::new(0);
        pool.install(|| {
            let (_, _) = join(
                || seen.fetch_add(1, Ordering::Relaxed),
                || seen.fetch_add(1, Ordering::Relaxed),
            );
        });
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(pool.num_threads(), 3);
    }

    #[test]
    fn install_from_external_thread() {
        let total: u64 = global_pool().install(|| (0..100u64).sum());
        assert_eq!(total, 4950);
    }

    #[test]
    fn worker_index_inside_pool() {
        assert_eq!(worker_index(), None);
        let idx = global_pool().install(worker_index);
        assert!(idx.is_some());
        assert!(idx.unwrap() < global_pool().num_threads());
    }

    #[test]
    fn pool_drop_terminates() {
        let pool = Pool::new(2);
        pool.install(|| ());
        drop(pool); // must not hang
    }

    #[test]
    fn scope_runs_all_spawns() {
        let hits = AtomicU64::new(0);
        global_pool().scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_spawns_borrow_stack_data() {
        let mut results = [0u64; 8];
        {
            let chunks: Vec<&mut u64> = results.iter_mut().collect();
            scope(|s| {
                for (i, slot) in chunks.into_iter().enumerate() {
                    s.spawn(move |_| *slot = (i * i) as u64);
                }
            });
        }
        assert!(results
            .iter()
            .enumerate()
            .all(|(i, &x)| x == (i * i) as u64));
    }

    #[test]
    fn scope_returns_body_result() {
        let r = global_pool().scope(|s| {
            s.spawn(|_| ());
            "done"
        });
        assert_eq!(r, "done");
    }

    #[test]
    fn scope_nested_spawns_and_joins() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    // Fork-join inside a spawned job; also nested spawns.
                    let (a, b) = join(|| 1u64, || 2u64);
                    total.fetch_add(a + b, Ordering::Relaxed);
                    s.spawn(|_| {
                        total.fetch_add(10, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 3 + 4 * 10);
    }

    #[test]
    fn scope_propagates_spawn_panic() {
        let r = std::panic::catch_unwind(|| {
            global_pool().scope(|s| {
                s.spawn(|_| panic!("spawned job panicked"));
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_completes_remaining_jobs_despite_panic() {
        let hits = Arc::new(AtomicU64::new(0));
        let hits2 = Arc::clone(&hits);
        let r = std::panic::catch_unwind(move || {
            global_pool().scope(|s| {
                for i in 0..50 {
                    let hits = Arc::clone(&hits2);
                    s.spawn(move |_| {
                        if i == 13 {
                            panic!("one bad job");
                        }
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        assert!(r.is_err());
        assert_eq!(
            hits.load(Ordering::Relaxed),
            49,
            "other jobs must still run"
        );
    }

    /// Scopes submitted from several external threads at once share one
    /// worker set without deadlock or starvation — the serving pattern.
    #[test]
    fn concurrent_scopes_from_external_threads() {
        let pool = Arc::new(Pool::new(3));
        let total = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        pool.scope(|s| {
                            for _ in 0..8 {
                                let total = Arc::clone(&total);
                                s.spawn(move |_| {
                                    total.fetch_add(t + 1, Ordering::Relaxed);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 16 * 8 * (1 + 2 + 3 + 4));
    }

    /// Regression test for the lost-wakeup race: `notify()` used to check
    /// `sleepers` with a relaxed load outside the lock, so work published
    /// while a worker was committing to park could miss the notify and stall
    /// for the full park timeout (up to 20 ms). The producer below fires
    /// exactly when the consumer is between its work check and its park —
    /// the racy window — and bounds the average wakeup latency. All
    /// harness flags use SeqCst so any measured stall is attributable to
    /// the sleep protocol itself, not to the test's own synchronization.
    #[test]
    fn sleep_no_lost_wakeup() {
        use std::sync::atomic::AtomicU64;
        use std::sync::Arc;
        use std::time::Instant;

        const ROUNDS: u32 = 100;
        let sleep = Arc::new(Sleep::new());
        let work = Arc::new(AtomicBool::new(false));
        let done = Arc::new(AtomicBool::new(false));
        // Bumped by the consumer right before it commits to park.
        let parking = Arc::new(AtomicU64::new(0));

        let consumer = {
            let (sleep, work, done, parking) = (
                Arc::clone(&sleep),
                Arc::clone(&work),
                Arc::clone(&done),
                Arc::clone(&parking),
            );
            std::thread::spawn(move || {
                // ORDERING: SeqCst harness flags (see the test doc).
                while !done.load(Ordering::SeqCst) {
                    // ORDERING: SeqCst harness flag
                    if work.swap(false, Ordering::SeqCst) {
                        continue;
                    }
                    // ORDERING: SeqCst harness flag
                    parking.fetch_add(1, Ordering::SeqCst);
                    // Hand the producer the CPU *inside* the racy window
                    // (after the work check, before the park) so the race is
                    // exercised every round even on a single-core host.
                    std::thread::yield_now();
                    // streak 640 => the maximum 20 ms park timeout, so a
                    // lost wakeup costs the full stall.
                    sleep.sleep(640, || work.load(Ordering::SeqCst)); // ORDERING: SeqCst harness flag
                }
            })
        };

        let mut latencies = Vec::with_capacity(ROUNDS as usize);
        for _ in 0..ROUNDS {
            // Wait until the consumer is about to park, then race it.
            let seen = parking.load(Ordering::SeqCst); // ORDERING: SeqCst harness flag
                                                       // ORDERING: SeqCst harness flag
            while parking.load(Ordering::SeqCst) == seen {
                std::thread::yield_now();
            }
            let t0 = Instant::now();
            work.store(true, Ordering::SeqCst); // ORDERING: SeqCst harness flag
            sleep.notify();
            // ORDERING: SeqCst harness flag
            while work.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            latencies.push(t0.elapsed());
        }
        done.store(true, Ordering::SeqCst); // ORDERING: SeqCst harness flag
        while !consumer.is_finished() {
            sleep.notify();
            std::thread::yield_now();
        }
        consumer.join().unwrap();

        // Lost wakeups cost the full 20 ms timeout and this producer targets
        // the racy window every round, so the old protocol pushes the
        // *median* to ~20 ms. A correct protocol wakes in microseconds; the
        // median (unlike the mean) shrugs off the occasional multi-ms
        // scheduling outlier from concurrently running tests.
        latencies.sort_unstable();
        let median = latencies[latencies.len() / 2];
        assert!(
            median < Duration::from_millis(5),
            "median wakeup latency {median:?} (max {:?})",
            latencies.last().unwrap()
        );
    }
}
