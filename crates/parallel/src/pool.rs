//! The work-stealing thread pool and the structured [`join`] primitive.
//!
//! One deque per worker (LIFO for the owner, FIFO for thieves) plus a global
//! injector for jobs submitted from outside the pool — the classic Cilk /
//! Blumofe-Leiserson design the paper's own scheduler follows. `join(a, b)`
//! pushes `b`, runs `a`, then either pops `b` back or steals other work until
//! the thief finishes `b`.

use crate::job::{JobRef, StackJob};
use crate::latch::{LockLatch, SpinLatch};
use crossbeam_deque::{Injector, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

thread_local! {
    static WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

struct Sleep {
    lock: Mutex<()>,
    cond: Condvar,
    sleepers: AtomicUsize,
}

impl Sleep {
    fn new() -> Self {
        Self {
            lock: Mutex::new(()),
            cond: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// Wake sleeping workers because new work arrived.
    #[inline]
    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.lock.lock();
            self.cond.notify_all();
        }
    }

    /// Park briefly; a timeout bounds the cost of any lost wakeup. Longer
    /// idle streaks park longer so that idle pools do not steal cycles from
    /// busy ones (the harness runs several pools in one process).
    fn sleep(&self, streak: u32) {
        self.sleepers.fetch_add(1, Ordering::Relaxed);
        let ms = (1 + streak / 16).min(20) as u64;
        let mut g = self.lock.lock();
        self.cond.wait_for(&mut g, Duration::from_millis(ms));
        drop(g);
        self.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}

pub(crate) struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep: Sleep,
    terminate: AtomicBool,
    num_threads: usize,
}

impl Registry {
    #[inline]
    fn notify_work(&self) {
        self.sleep.notify();
    }

    /// Attempt to steal one job, scanning the injector and then other workers
    /// starting from a position derived from `from` to avoid contention.
    fn steal(&self, from: usize) -> Option<JobRef> {
        loop {
            match self.injector.steal() {
                crossbeam_deque::Steal::Success(job) => return Some(job),
                crossbeam_deque::Steal::Empty => break,
                crossbeam_deque::Steal::Retry => continue,
            }
        }
        let n = self.stealers.len();
        for i in 0..n {
            let victim = (from + i + 1) % n;
            if victim == from {
                continue;
            }
            loop {
                match self.stealers[victim].steal() {
                    crossbeam_deque::Steal::Success(job) => return Some(job),
                    crossbeam_deque::Steal::Empty => break,
                    crossbeam_deque::Steal::Retry => continue,
                }
            }
        }
        None
    }
}

pub(crate) struct WorkerThread {
    deque: Deque<JobRef>,
    index: usize,
    registry: Arc<Registry>,
}

impl WorkerThread {
    #[inline]
    pub(crate) fn current() -> *const WorkerThread {
        WORKER.with(|w| w.get())
    }

    #[inline]
    fn push(&self, job: JobRef) {
        self.deque.push(job);
        self.registry.notify_work();
    }

    /// Pop the most recently pushed job (ours, unless it was stolen).
    #[inline]
    fn pop(&self) -> Option<JobRef> {
        self.deque.pop()
    }

    /// Busy-wait for `latch`, executing any available work in the meantime.
    /// Long waits back off to short sleeps so a starved sibling (e.g. on an
    /// oversubscribed or throttled host) can finish the stolen job.
    fn wait_until(&self, latch: &SpinLatch) {
        let mut spins = 0u32;
        while !latch.probe() {
            let job = self.pop().or_else(|| self.registry.steal(self.index));
            match job {
                Some(job) => {
                    unsafe { job.execute() };
                    spins = 0;
                }
                None => {
                    spins += 1;
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else if spins < 512 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
        }
    }

    fn main_loop(&self) {
        let registry = &self.registry;
        let mut idle_rounds = 0u32;
        while !registry.terminate.load(Ordering::Acquire) {
            match self.pop().or_else(|| registry.steal(self.index)) {
                Some(job) => {
                    unsafe { job.execute() };
                    idle_rounds = 0;
                }
                None => {
                    idle_rounds += 1;
                    if idle_rounds < 32 {
                        std::thread::yield_now();
                    } else {
                        registry.sleep.sleep(idle_rounds - 32);
                    }
                }
            }
        }
    }
}

/// A fork-join thread pool.
///
/// Most users interact with the process-wide [`global_pool`]; dedicated pools
/// exist so that the benchmark harness can measure 1-thread (`T1`) and
/// all-thread (`Tp`) executions in one process (Figure 6).
pub struct Pool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Create a pool with `num_threads` workers (minimum 1).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let deques: Vec<Deque<JobRef>> = (0..num_threads).map(|_| Deque::new_lifo()).collect();
        let stealers = deques.iter().map(|d| d.stealer()).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleep: Sleep::new(),
            terminate: AtomicBool::new(false),
            num_threads,
        });
        let mut handles = Vec::with_capacity(num_threads);
        for (index, deque) in deques.into_iter().enumerate() {
            let registry = Arc::clone(&registry);
            let handle = std::thread::Builder::new()
                .name(format!("sage-worker-{index}"))
                .spawn(move || {
                    let worker = WorkerThread {
                        deque,
                        index,
                        registry,
                    };
                    WORKER.with(|w| w.set(&worker as *const WorkerThread));
                    worker.main_loop();
                    WORKER.with(|w| w.set(std::ptr::null()));
                })
                .expect("failed to spawn sage worker thread");
            handles.push(handle);
        }
        Pool { registry, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads
    }

    /// Run `f` inside the pool, blocking until it completes.
    ///
    /// If the current thread is already a worker of this pool, `f` runs
    /// inline; otherwise it is injected and executed by a worker, so nested
    /// `join` calls inside `f` are scheduled on this pool.
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let current = WorkerThread::current();
        if !current.is_null() {
            let worker = unsafe { &*current };
            if Arc::ptr_eq(&worker.registry, &self.registry) {
                return f();
            }
        }
        let job = StackJob::<LockLatch, F, R>::new(LockLatch::new(), f);
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.injector.push(job_ref);
        self.registry.notify_work();
        job.latch().wait();
        unsafe { job.take_result() }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.registry.terminate.store(true, Ordering::Release);
        // Wake all sleepers repeatedly until every worker observed termination.
        for handle in self.handles.drain(..) {
            while !handle.is_finished() {
                self.registry.sleep.notify();
                std::thread::yield_now();
            }
            let _ = handle.join();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SAGE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide pool, created on first use with
/// `SAGE_THREADS`-many workers (default: all hardware threads).
pub fn global_pool() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

/// Number of workers in the pool the current thread belongs to (or the global
/// pool for external threads).
pub fn num_threads() -> usize {
    let current = WorkerThread::current();
    if !current.is_null() {
        unsafe { &*current }.registry.num_threads
    } else {
        global_pool().num_threads()
    }
}

/// Index of the current worker thread within its pool, or `None` when called
/// from a thread outside any pool. Used by `edgeMapChunked` for its
/// thread-local chunk vectors (§4.1.2).
pub fn worker_index() -> Option<usize> {
    let current = WorkerThread::current();
    if current.is_null() {
        None
    } else {
        Some(unsafe { (*current).index })
    }
}

/// `true` when the calling thread is a pool worker.
pub fn in_worker() -> bool {
    !WorkerThread::current().is_null()
}

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// This is the binary `fork` of the T-RAM model (§3.1). Panics in either
/// closure propagate to the caller after both branches have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let current = WorkerThread::current();
    if current.is_null() {
        // External thread: move the whole join into the global pool.
        return global_pool().install(|| join(a, b));
    }
    let worker = unsafe { &*current };
    join_on_worker(worker, a, b)
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::<SpinLatch, B, RB>::new(SpinLatch::new(), b);
    let job_b_ref = unsafe { job_b.as_job_ref() };
    let job_b_id = job_b_ref.id();
    worker.push(job_b_ref);

    let result_a = std::panic::catch_unwind(std::panic::AssertUnwindSafe(a));

    // Either pop `b` back and run it inline, or help out until the thief is done.
    while !job_b.latch().probe() {
        match worker.pop() {
            Some(job) => {
                if job.id() == job_b_id {
                    unsafe { job_b.run_inline() };
                    break;
                }
                // A leftover job pushed during `a` (only possible if `a`
                // panicked mid-join); execute it to preserve progress.
                unsafe { job.execute() };
            }
            None => {
                worker.wait_until(job_b.latch());
                break;
            }
        }
    }
    debug_assert!(job_b.latch().probe());

    let result_b = unsafe { job_b.take_result() };
    match result_a {
        Ok(ra) => (ra, result_b),
        Err(p) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn join_nested_fib() {
        assert_eq!(fib(16), 987);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| "left", || vec![1, 2, 3]);
        assert_eq!(a, "left");
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || -> usize { panic!("b panicked") });
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let r = std::panic::catch_unwind(|| {
            join(|| -> usize { panic!("a panicked") }, || 1);
        });
        assert!(r.is_err());
    }

    #[test]
    fn single_thread_pool_executes() {
        let pool = Pool::new(1);
        let v = pool.install(|| {
            let (a, b) = join(|| 2, || 3);
            a + b
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn dedicated_pool_counts_workers() {
        let pool = Pool::new(3);
        let seen = AtomicU64::new(0);
        pool.install(|| {
            let (_, _) = join(
                || seen.fetch_add(1, Ordering::Relaxed),
                || seen.fetch_add(1, Ordering::Relaxed),
            );
        });
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(pool.num_threads(), 3);
    }

    #[test]
    fn install_from_external_thread() {
        let total: u64 = global_pool().install(|| (0..100u64).sum());
        assert_eq!(total, 4950);
    }

    #[test]
    fn worker_index_inside_pool() {
        assert_eq!(worker_index(), None);
        let idx = global_pool().install(worker_index);
        assert!(idx.is_some());
        assert!(idx.unwrap() < global_pool().num_threads());
    }

    #[test]
    fn pool_drop_terminates() {
        let pool = Pool::new(2);
        pool.install(|| ());
        drop(pool); // must not hang
    }
}
