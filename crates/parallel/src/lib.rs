#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Cilk-style fork-join runtime and parallel primitives for the Sage reproduction.
//!
//! The Sage paper analyses algorithms in the binary-forking (T-RAM) model and runs
//! them on a work-stealing scheduler "that we implemented, implemented similarly to
//! Cilk" (§5.1.1). This crate reproduces that substrate: a work-stealing pool built
//! on `crossbeam-deque` exposing a structured [`join`] primitive, plus the parallel
//! primitives the paper relies on (§2): prefix sum ([`scan_add`]/[`scan_with`]),
//! reductions ([`reduce_map`] and friends), filter/pack ([`filter_slice`],
//! [`pack_index`]), parallel sorting, a concurrent hash table, and the histogram
//! primitive used by k-core and densest subgraph (§4.3.4).
//!
//! All primitives are deterministic given fixed inputs (randomized helpers take
//! explicit seeds) and degrade gracefully to sequential execution when the pool has
//! a single worker, which is how the benchmark harness measures `T1`.
//!
//! # Quickstart
//!
//! ```
//! use sage_parallel as par;
//!
//! // Parallel loop with automatic grain selection.
//! let mut squares = vec![0u64; 1000];
//! par::par_for_slices(&mut squares, |i, x| *x = (i * i) as u64);
//!
//! // Fork-join.
//! let (a, b) = par::join(|| 21, || 2);
//! assert_eq!(a * b, 42);
//!
//! // Prefix sums (exclusive scan), as defined in §2 of the paper.
//! let mut v = vec![1u64, 2, 3, 4];
//! let total = par::scan_add(&mut v);
//! assert_eq!((v, total), (vec![0, 1, 3, 6], 10));
//! ```

pub mod context;
pub mod hash_table;
pub mod histogram;
mod job;
mod latch;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod sort;

pub use hash_table::ConcurrentMap;
pub use histogram::{histogram_dense, histogram_sparse, Histogram};
pub use ops::{
    count_ones, count_ones_per_bit, filter_slice, pack_index, par_copy, par_fill, par_for,
    par_for_grain, par_for_slices, par_map, par_map_grain, reduce_add, reduce_map, reduce_max,
    reduce_min, reduce_or, scan_add, scan_with, SendPtr,
};
pub use pool::{global_pool, in_worker, join, num_threads, scope, worker_index, Pool, Scope};
pub use rng::{hash64, hash64_pair, SplitMix64};
pub use sort::{merge_into, par_sort, par_sort_by, par_sort_by_key};

/// The default sequential grain size used when a caller does not specify one.
///
/// Chosen so that per-task scheduling overhead is amortized over a few
/// microseconds of work, mirroring the blocking factor used by the paper's
/// scheduler.
pub const DEFAULT_GRAIN: usize = 2048;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_shapes() {
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }
}
