#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! `sage` — facade over the Sage semi-asymmetric graph engine (VLDB'20).
//!
//! Sage processes graphs under the Parallel Semi-Asymmetric Model (PSAM): the
//! graph is a read-only structure in large memory (NVRAM) and all mutable
//! state lives in `O(n)` words of small memory (DRAM). This crate is the
//! single public entry point over the six workspace crates:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | scheduler | [`parallel`] | work-stealing pool, `join`, scan/reduce/filter/sort |
//! | memory | [`nvram`] | read-only mappings, the PSAM [`Meter`], Memory-Mode cache |
//! | graph | [`graph`] | [`Csr`], [`CompressedCsr`], generators, binary I/O |
//! | engine | [`core`] | [`edge_map()`], graphFilter, bucketing, the 18 [`algo`]s |
//! | serving | [`serve`] | [`GraphService`]: concurrent queries over one snapshot |
//! | comparison | [`baselines`] | GBBS-, Galois-, GridGraph-style comparators |
//!
//! # Quickstart
//!
//! ```
//! use sage::{algo::bfs, gen, Graph};
//!
//! // A small scale-free graph (substitute for the paper's real inputs).
//! let g = gen::rmat(10, 8, gen::RmatParams::default(), 1);
//! let parents = bfs::bfs(&g, 0);
//! assert_eq!(parents[0], 0); // the source is its own parent
//! assert!(g.num_edges() > 0);
//! ```

/// The fork-join runtime and parallel primitives (`sage-parallel`).
pub use sage_parallel as parallel;

/// NVRAM emulation: regions, meter, Memory-Mode cache (`sage-nvram`).
pub use sage_nvram as nvram;

/// Graph representations, generators, and I/O (`sage-graph`).
pub use sage_graph as graph;

/// The Sage engine: traversal, filtering, bucketing, algorithms (`sage-core`).
pub use sage_core as core;

/// Comparator systems used by the evaluation harness (`sage-baselines`).
pub use sage_baselines as baselines;

/// Concurrent multi-query serving over one shared graph (`sage-serve`).
pub use sage_serve as serve;

/// The 18 graph algorithms of the paper's Table 1.
pub use sage_core::algo;

/// Synthetic graph generators substituting for the paper's inputs (Table 2).
pub use sage_graph::gen;

pub use sage_core::{
    edge_map, DeltaOverlay, EdgeMapFn, EdgeMapOpts, EdgeUpdate, GraphFilter, QueryArena,
    SparseImpl, Strategy, VertexSubset,
};
pub use sage_graph::{
    build_csr, BuildOptions, CompressedCsr, Csr, EdgeList, Graph, ShardRepr, Sharded, ShardedCsr,
    Storage, NONE_V, V,
};
pub use sage_nvram::{
    CostModel, MemConfig, Meter, MeterScope, MeterSnapshot, NvRegion, NvSlice, WriteBudget,
};
pub use sage_serve::{
    CacheStats, GraphService, Priority, PublishError, PublishReport, Publishable, Query,
    QueryResult, Response, SchedPolicy, ServiceBuilder, ServiceConfig, ShardedService, Snapshot,
    Ticket, DEFAULT_DAMPING,
};
